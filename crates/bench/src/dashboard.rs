//! The self-hosted monitoring dashboard served at `GET /` by
//! `repro serve`: one static HTML page, zero external assets, whose
//! inline script polls `/status`, `/events` and `/query` and renders a
//! window energy sparkline, a zoomable historical chart backed by the
//! power observatory (raw → 10× → 100× retention levels with min/max
//! bands and an anomaly timeline), per-master attribution bars, stage
//! latencies, an event-ring health badge (drops + drain lag), and an
//! anomaly log with causal drill-down (anomaly window → booked energy
//! → the transactions inside that window).
//!
//! On a multi-shard plane the header grows a shard selector: the "all"
//! view renders the merged endpoints plus a per-shard overview table
//! (from `/status`'s `shard_detail`), while picking a shard appends
//! `shard=K` to every poll for single-shard drill-down. The `/events`
//! cursor is treated as opaque — numeric on one shard, dot-joined on
//! the merged plane — so the same polling loop serves both.
//!
//! Everything is vanilla DOM + one `<canvas>`; the page works from the
//! same std-only HTTP server as `/metrics` with no build step.

/// The dashboard page, served verbatim.
pub const DASHBOARD_HTML: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ahbpower live</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 0; background: #11151c; color: #d8dee9; }
  header { padding: 10px 16px; background: #181d26; border-bottom: 1px solid #2a3140; }
  header h1 { font-size: 15px; margin: 0 0 4px; color: #88c0d0; }
  #summary span { margin-right: 18px; color: #9aa5b5; }
  #summary b { color: #eceff4; font-weight: 600; }
  main { display: grid; grid-template-columns: 1fr 1fr; gap: 14px; padding: 14px 16px; }
  section { background: #181d26; border: 1px solid #2a3140; border-radius: 6px; padding: 10px 12px; }
  section h2 { font-size: 12px; margin: 0 0 8px; color: #81a1c1; text-transform: uppercase;
               letter-spacing: 0.08em; }
  canvas { width: 100%; height: 120px; display: block; }
  .bar-row { display: flex; align-items: center; margin: 3px 0; }
  .bar-label { width: 90px; color: #9aa5b5; }
  .bar-track { flex: 1; background: #11151c; border-radius: 3px; height: 14px; }
  .bar-fill { background: #5e81ac; height: 14px; border-radius: 3px; min-width: 2px; }
  .bar-val { width: 110px; text-align: right; color: #9aa5b5; padding-left: 8px; }
  table { width: 100%; border-collapse: collapse; }
  th, td { text-align: right; padding: 2px 8px; border-bottom: 1px solid #222836; }
  th:first-child, td:first-child { text-align: left; }
  th { color: #81a1c1; font-weight: 600; }
  #anomalies tr.flag { color: #bf616a; cursor: pointer; }
  #anomalies tr.flag:hover { background: #232a38; }
  #drill { white-space: pre; color: #a3be8c; max-height: 200px; overflow: auto;
           background: #11151c; border-radius: 4px; padding: 8px; margin-top: 8px; }
  #err { color: #bf616a; padding: 4px 16px; }
  .badge { background: #bf616a; color: #eceff4; border-radius: 3px;
           padding: 0 6px; margin-right: 18px; font-weight: 600; }
  .zoom button { font: inherit; background: #232a38; color: #9aa5b5; border: 1px solid #2a3140;
                 border-radius: 3px; padding: 1px 8px; margin-left: 6px; cursor: pointer; }
  .zoom button.on { background: #5e81ac; color: #eceff4; }
  #histmeta { color: #9aa5b5; margin-top: 4px; }
</style>
</head>
<body>
<header>
  <h1>ahbpower &mdash; AMBA AHB power model, live
    <select id="shardsel" style="display:none; float:right; font:inherit;
      background:#232a38; color:#d8dee9; border:1px solid #2a3140;"></select>
  </h1>
  <div id="summary">connecting&hellip;</div>
</header>
<div id="err"></div>
<main>
  <section>
    <h2>Window energy (J) &mdash; measured vs predicted</h2>
    <canvas id="spark" width="560" height="120"></canvas>
  </section>
  <section>
    <h2>Per-master energy attribution</h2>
    <div id="masters"></div>
    <h2 style="margin-top:12px">Stage latency (&micro;s)</h2>
    <table id="stages"><thead><tr><th>stage</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr></thead><tbody></tbody></table>
  </section>
  <section style="grid-column: 1 / -1">
    <h2 class="zoom">Power history &mdash; observatory
      <button id="z1" data-step="1">raw</button>
      <button id="z10" data-step="10" class="on">10&times;</button>
      <button id="z100" data-step="100">100&times;</button>
    </h2>
    <canvas id="hist" width="1140" height="140"></canvas>
    <div id="histmeta">loading history&hellip;</div>
  </section>
  <section id="shardview" style="grid-column: 1 / -1; display: none">
    <h2>Shards &mdash; merged plane overview</h2>
    <table id="shardtable"><thead><tr><th>shard</th><th>mix</th><th>seed</th><th>slices</th><th>cycles</th><th>energy J</th><th>txns</th><th>anomalies</th><th>ring drop/lag</th><th>bundles</th></tr></thead><tbody></tbody></table>
  </section>
  <section style="grid-column: 1 / -1">
    <h2>Anomaly log (click a row for the causal trace)</h2>
    <table id="anomalies"><thead><tr><th>window</th><th>slice</th><th>start cycle</th><th>deviation %</th><th>z</th></tr></thead><tbody></tbody></table>
    <div id="drill">no anomaly selected</div>
  </section>
</main>
<script>
"use strict";
var cursor = 0;            // opaque: numeric on one shard, dot-joined merged
var buffer = [];           // retained events, oldest first
var BUFFER_CAP = 20000;
var masterNames = ["cpu", "dma", "stream", "m3", "m4", "m5", "m6", "m7"];
var shard = "";            // "" = merged plane, "K" = drill into shard K
var shardCount = 1;

// Appends the shard drill-down parameter; sep is "?" or "&" depending
// on whether the path already has a query string.
function shardQ(sep) { return shard === "" ? "" : sep + "shard=" + shard; }

function setShard(value) {
  shard = value;
  cursor = 0; buffer = [];   // each shard (and the merged plane) has its own cursor space
  renderSpark(); renderAnomalies(); poll(); pollHistory();
}

function renderShardSelector(s) {
  // Single-shard /status (drill-down) omits the plane-level "shards"
  // field — remember the largest count seen so the selector survives
  // switching into a shard and back.
  var n = s.shards || 1;
  var sel = byId("shardsel");
  if (n > shardCount) {
    shardCount = n;
    var opts = '<option value="">all shards</option>';
    for (var i = 0; i < n; i++) { opts += '<option value="' + i + '">shard ' + i + "</option>"; }
    sel.innerHTML = opts;
    sel.value = shard;
  }
  sel.style.display = shardCount < 2 ? "none" : "";
}

function renderShardTable(s) {
  var detail = s.shard_detail || [];
  var view = byId("shardview");
  if (shard !== "" || detail.length < 2) { view.style.display = "none"; return; }
  view.style.display = "";
  var rows = "";
  detail.forEach(function (d) {
    var ev = d.events || {};
    rows += "<tr><td>" + d.shard + (d.degraded ? ' <span class="badge">degraded</span>' : "") +
      "</td><td>" + esc(d.scenario_mix) + "</td><td>" + d.seed + "</td><td>" + d.slices +
      "</td><td>" + d.cycles + "</td><td>" + fmt(d.total_energy_j, 9) +
      "</td><td>" + (d.transactions || 0) + "</td><td>" + (d.anomalies || 0) +
      "</td><td>" + (ev.dropped || 0) + "/" + (ev.lag || 0) +
      "</td><td>" + (d.flightrec_bundles || 0) + "</td></tr>";
  });
  byId("shardtable").tBodies[0].innerHTML = rows;
}

byId("shardsel").addEventListener("change", function () {
  setShard(byId("shardsel").value);
});

function byId(id) { return document.getElementById(id); }
function fmt(x, d) { return (x == null) ? "-" : Number(x).toFixed(d == null ? 2 : d); }
function esc(s) { return String(s).replace(/[&<>]/g, function (c) {
  return { "&": "&amp;", "<": "&lt;", ">": "&gt;" }[c]; }); }

function renderSummary(s) {
  // Ring health: a red badge whenever events were lost to wraparound or
  // the worker's drain cursor is lagging the publish counter.
  var drops = s.events ? (s.events.dropped || 0) : 0;
  var lag = s.events ? (s.events.lag || 0) : 0;
  var badges = "";
  if (drops > 0 || lag > 0) {
    badges += '<span class="badge">ring: ' + drops + " dropped / lag " + lag + "</span>";
  }
  if (s.degraded) { badges += '<span class="badge">degraded</span>'; }
  byId("summary").innerHTML =
    "<span>mix <b>" + esc(s.scenario_mix) + "</b></span>" +
    "<span>slices <b>" + s.slices + "</b></span>" +
    "<span>cycles <b>" + s.cycles + "</b></span>" +
    "<span>txns <b>" + (s.transactions || 0) + "</b></span>" +
    "<span>energy <b>" + fmt(s.total_energy_j, 6) + " J</b></span>" +
    "<span>anomalies <b>" + s.anomalies.count + "/" + s.anomalies.windows + "</b></span>" +
    "<span>events <b>" + (s.events ? s.events.published : 0) +
      (s.events && s.events.dropped ? " (-" + s.events.dropped + ")" : "") + "</b></span>" +
    "<span>up <b>" + fmt(s.uptime_s, 0) + "s</b></span>" + badges;
}

function renderMasters(s) {
  var per = s.per_master_j || [];
  var max = Math.max.apply(null, per.concat([1e-12]));
  var html = "";
  for (var i = 0; i < per.length; i++) {
    var pct = Math.max(0.5, 100 * per[i] / max);
    html += '<div class="bar-row"><div class="bar-label">' +
      esc(masterNames[i] || ("m" + i)) + '</div>' +
      '<div class="bar-track"><div class="bar-fill" style="width:' + pct + '%"></div></div>' +
      '<div class="bar-val">' + fmt(per[i], 6) + ' J</div></div>';
  }
  byId("masters").innerHTML = html || "no data yet";
}

function renderStages(s) {
  var rows = "";
  var st = s.stages || {};
  ["sim_us", "publish_us", "render_us"].forEach(function (k) {
    var h = st[k] || {};
    rows += "<tr><td>" + k.replace("_us", "") + "</td><td>" + (h.count || 0) +
      "</td><td>" + fmt(h.p50, 0) + "</td><td>" + fmt(h.p95, 0) +
      "</td><td>" + fmt(h.p99, 0) + "</td></tr>";
  });
  byId("stages").tBodies[0].innerHTML = rows;
}

function renderSpark() {
  var booked = buffer.filter(function (e) { return e.event === "EnergyBooked"; }).slice(-120);
  var c = byId("spark");
  var g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  if (!booked.length) { return; }
  var max = 1e-15;
  booked.forEach(function (e) { max = Math.max(max, e.a || 0, e.b || 0); });
  function plot(key, color) {
    g.strokeStyle = color;
    g.lineWidth = key === "a" ? 1.6 : 1;
    g.beginPath();
    booked.forEach(function (e, i) {
      var x = i * (c.width - 4) / Math.max(1, booked.length - 1) + 2;
      var y = c.height - 4 - (e[key] || 0) / max * (c.height - 10);
      if (i === 0) { g.moveTo(x, y); } else { g.lineTo(x, y); }
    });
    g.stroke();
  }
  plot("b", "#4c566a");   // predicted, dim
  plot("a", "#88c0d0");   // measured, bright
  // flag anomalous windows in red
  var flagged = {};
  buffer.forEach(function (e) { if (e.event === "AnomalyFlagged") { flagged[e.window] = true; } });
  g.fillStyle = "#bf616a";
  booked.forEach(function (e, i) {
    if (flagged[e.window]) {
      var x = i * (c.width - 4) / Math.max(1, booked.length - 1) + 2;
      var y = c.height - 4 - (e.a || 0) / max * (c.height - 10);
      g.fillRect(x - 2, y - 2, 4, 4);
    }
  });
}

function drill(win) {
  var lines = [];
  buffer.forEach(function (e) {
    if (e.window !== win) { return; }
    if (e.event === "AnomalyFlagged") {
      lines.unshift("AnomalyFlagged  window=" + e.window + " slice=" + e.slice +
        " deviation=" + fmt(e.a, 1) + "% z=" + fmt(e.b, 2));
    } else if (e.event === "EnergyBooked") {
      lines.push("EnergyBooked    window=" + e.window + " measured=" + fmt(e.a, 9) +
        "J predicted=" + fmt(e.b, 9) + "J");
    } else if (e.event === "TxnComplete") {
      lines.push("TxnComplete     txn=" + e.txn + " master=" +
        (masterNames[e.tag] || ("m" + e.tag)) + " beats=" + fmt(e.a, 0) +
        " waits=" + fmt(e.b, 0) + " cycle=" + e.cycle);
    }
  });
  byId("drill").textContent = lines.length
    ? lines.join("\n")
    : "window " + win + ": transactions already evicted from the client buffer";
}

function renderAnomalies() {
  var flags = buffer.filter(function (e) { return e.event === "AnomalyFlagged"; }).slice(-50);
  var rows = "";
  flags.reverse().forEach(function (e) {
    rows += '<tr class="flag" data-w="' + e.window + '"><td>' + e.window + "</td><td>" +
      e.slice + "</td><td>" + e.cycle + "</td><td>" + fmt(e.a, 1) + "</td><td>" +
      fmt(e.b, 2) + "</td></tr>";
  });
  byId("anomalies").tBodies[0].innerHTML =
    rows || '<tr><td colspan="5">none flagged</td></tr>';
}

byId("anomalies").addEventListener("click", function (ev) {
  var tr = ev.target.closest("tr.flag");
  if (tr) { drill(Number(tr.getAttribute("data-w"))); }
});

// --- Historical chart: the power observatory behind GET /query. The
// step parameter picks the retention level (1 = raw windows, 10 and
// 100 the downsampled rings), so zooming out never loses the run's
// history — it just answers from a coarser ring.
var histStep = 10;

function setZoom(step) {
  histStep = step;
  ["z1", "z10", "z100"].forEach(function (id) {
    var b = byId(id);
    b.className = Number(b.getAttribute("data-step")) === step ? "on" : "";
  });
  pollHistory();
}
["z1", "z10", "z100"].forEach(function (id) {
  byId(id).addEventListener("click", function () {
    setZoom(Number(byId(id).getAttribute("data-step")));
  });
});

function renderHistory(energy, anomalies) {
  var c = byId("hist");
  var g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  var pts = energy.points || [];
  if (!pts.length) { byId("histmeta").textContent = "no history yet"; return; }
  var max = 1e-15;
  pts.forEach(function (p) { max = Math.max(max, p.max || 0); });
  function x(i) { return i * (c.width - 4) / Math.max(1, pts.length - 1) + 2; }
  function y(v) { return c.height - 14 - (v || 0) / max * (c.height - 24); }
  // min/max band across each bucket's raw windows
  g.fillStyle = "rgba(136,192,208,0.18)";
  g.beginPath();
  pts.forEach(function (p, i) {
    if (i === 0) { g.moveTo(x(i), y(p.max)); } else { g.lineTo(x(i), y(p.max)); }
  });
  for (var i = pts.length - 1; i >= 0; i--) { g.lineTo(x(i), y(pts[i].min)); }
  g.closePath();
  g.fill();
  // per-window mean energy line
  g.strokeStyle = "#88c0d0";
  g.lineWidth = 1.6;
  g.beginPath();
  pts.forEach(function (p, i) {
    var mean = p.sum / Math.max(1, p.windows || 1);
    if (i === 0) { g.moveTo(x(i), y(mean)); } else { g.lineTo(x(i), y(mean)); }
  });
  g.stroke();
  // anomaly timeline strip along the bottom (red tick = flagged windows
  // inside that bucket)
  var flagged = {};
  (anomalies.points || []).forEach(function (p) {
    if (p.sum > 0) { flagged[p.bucket] = p.sum; }
  });
  g.fillStyle = "#bf616a";
  pts.forEach(function (p, i) {
    if (flagged[p.bucket]) { g.fillRect(x(i) - 1, c.height - 8, 3, 6); }
  });
  var first = pts[0];
  var last = pts[pts.length - 1];
  byId("histmeta").textContent =
    "level " + energy.level + " (" + energy.factor + " window(s)/bucket), " +
    pts.length + " buckets, windows " + first.start_window + "–" +
    (last.start_window + Math.max(1, last.windows || 1) - 1) +
    ", peak " + Number(max).toExponential(3) + " J";
}

function pollHistory() {
  var step = histStep;
  Promise.all([
    fetch("/query?series=energy&step=" + step + shardQ("&")).then(function (r) { return r.json(); }),
    fetch("/query?series=anomalies&step=" + step + shardQ("&")).then(function (r) { return r.json(); })
  ]).then(function (rs) {
    if (histStep === step) { byId("err").textContent = ""; renderHistory(rs[0], rs[1]); }
  }).catch(function (e) { byId("err").textContent = "query: " + e; });
}

function poll() {
  fetch("/status" + shardQ("?")).then(function (r) { return r.json(); }).then(function (s) {
    byId("err").textContent = "";
    renderSummary(s); renderMasters(s); renderStages(s);
    renderShardSelector(s); renderShardTable(s);
  }).catch(function (e) { byId("err").textContent = "status: " + e; });
  fetch("/events?since=" + cursor + "&max=4096" + shardQ("&")).then(function (r) { return r.json(); })
    .then(function (b) {
      cursor = b.next;
      if (b.events.length) {
        buffer = buffer.concat(b.events);
        if (buffer.length > BUFFER_CAP) { buffer = buffer.slice(buffer.length - BUFFER_CAP); }
        renderSpark(); renderAnomalies();
      }
    }).catch(function (e) { byId("err").textContent = "events: " + e; });
}
poll();
pollHistory();
setInterval(poll, 1000);
setInterval(pollHistory, 2000);
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained() {
        // No external fetches beyond the service's own endpoints: every
        // src/href/fetch target must be a local absolute path.
        assert!(!DASHBOARD_HTML.contains("http://"));
        assert!(!DASHBOARD_HTML.contains("https://"));
        assert!(!DASHBOARD_HTML.contains("<script src"));
        assert!(!DASHBOARD_HTML.contains("<link"));
        for endpoint in ["/status", "/events?since=", "/query?series="] {
            assert!(
                DASHBOARD_HTML.contains(endpoint),
                "dashboard must poll {endpoint}"
            );
        }
    }

    #[test]
    fn dashboard_zooms_across_retention_levels_and_badges_ring_health() {
        // The history chart must offer all three observatory resolutions
        // and the header must be able to flag ring drops/lag in red.
        for step in ["data-step=\"1\"", "data-step=\"10\"", "data-step=\"100\""] {
            assert!(DASHBOARD_HTML.contains(step), "zoom button {step}");
        }
        assert!(DASHBOARD_HTML.contains("series=anomalies"));
        assert!(DASHBOARD_HTML.contains("class=\"badge\""));
        assert!(DASHBOARD_HTML.contains("dropped"));
    }

    #[test]
    fn dashboard_has_shard_selector_and_merged_overview() {
        // The shard selector drives ?shard= drill-down on every poll,
        // the merged view renders the per-shard overview table, and the
        // events cursor is passed through opaquely (never parsed), so
        // the dot-joined merged cursor works unchanged.
        assert!(DASHBOARD_HTML.contains("id=\"shardsel\""));
        assert!(DASHBOARD_HTML.contains("shardQ"));
        assert!(DASHBOARD_HTML.contains("id=\"shardtable\""));
        assert!(DASHBOARD_HTML.contains("shard_detail"));
        assert!(DASHBOARD_HTML.contains("cursor = b.next"));
        assert!(
            !DASHBOARD_HTML.contains("Number(b.next)"),
            "the cursor must stay opaque"
        );
    }

    #[test]
    fn dashboard_renders_the_causal_chain() {
        // The drill-down names the three event kinds of the causal
        // chain the acceptance test checks in events.jsonl.
        for kind in ["AnomalyFlagged", "EnergyBooked", "TxnComplete"] {
            assert!(DASHBOARD_HTML.contains(kind), "drill-down must show {kind}");
        }
    }
}
