//! Table 1 regression: the packed-bitmask snapshot must not move a single
//! bit of the paper experiment's energies.
//!
//! The golden values below are `f64::to_bits` of the seed commit's output
//! (pre-packing, `Vec<bool>` snapshot) for two seeds of the paper
//! testbench. Any change to arbitration, decoding, the power FSM, or the
//! snapshot encoding that perturbs even the last ulp fails here.

use ahbpower_bench::run_paper_experiment;

struct Golden {
    seed: u64,
    total: u64,
    dec: u64,
    m2s: u64,
    s2m: u64,
    arb: u64,
    rows: usize,
}

const CYCLES: u64 = 100_000;

const GOLDENS: [Golden; 2] = [
    Golden {
        seed: 2003,
        total: 0x3ecb2bdc3025a9fa,
        dec: 0x3e8d409c9cd297c8,
        m2s: 0x3eba4688a0dd3f47,
        s2m: 0x3eb5c757b1fceeb7,
        arb: 0x3e850e23ceb658b9,
        rows: 7,
    },
    Golden {
        seed: 7,
        total: 0x3ecb36d24b922fc7,
        dec: 0x3e8d49ad1cb1c609,
        m2s: 0x3eba458d7afbbf18,
        s2m: 0x3eb5ddcd4eb9166e,
        arb: 0x3e8508a14eca4bce,
        rows: 7,
    },
];

#[test]
fn paper_experiment_energies_are_bit_identical_to_seed_commit() {
    for g in &GOLDENS {
        let run = run_paper_experiment(CYCLES, g.seed);
        let b = run.session.blocks().totals();
        assert_eq!(
            run.session.total_energy().to_bits(),
            g.total,
            "seed {}: total energy moved (got {:#018x})",
            g.seed,
            run.session.total_energy().to_bits()
        );
        assert_eq!(b.dec.to_bits(), g.dec, "seed {}: decoder energy", g.seed);
        assert_eq!(b.m2s.to_bits(), g.m2s, "seed {}: M2S mux energy", g.seed);
        assert_eq!(b.s2m.to_bits(), g.s2m, "seed {}: S2M mux energy", g.seed);
        assert_eq!(b.arb.to_bits(), g.arb, "seed {}: arbiter energy", g.seed);
        assert_eq!(
            run.session.ledger().rows().len(),
            g.rows,
            "seed {}: Table 1 row count",
            g.seed
        );
    }
}
