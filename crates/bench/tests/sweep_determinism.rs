//! End-to-end determinism of the parallel sweep engine: an 8-job run must
//! produce byte-identical artifacts (outcomes, CSV, report text) to a
//! serial run — the property that makes `--jobs` safe to default on.

use ahbpower_bench::{run_sweep, sweep_csv, sweep_grid, sweep_report, SweepRunner};

#[test]
fn eight_job_sweep_is_byte_identical_to_serial() {
    let points = sweep_grid(3_000, 2003, 2);
    let serial = run_sweep(&points, 1);
    let parallel = run_sweep(&points, 8);
    assert_eq!(serial, parallel, "outcomes diverged");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.total_energy.to_bits(),
            p.total_energy.to_bits(),
            "energy bits diverged at seed {} style {}",
            s.point.seed,
            s.point.style.name()
        );
    }
    assert_eq!(sweep_csv(&serial), sweep_csv(&parallel), "CSV diverged");
    assert_eq!(
        sweep_report(&serial),
        sweep_report(&parallel),
        "report text diverged"
    );
}

#[test]
fn oversubscribed_runner_is_stable_across_repeats() {
    // More jobs than points and repeated runs: same bytes every time.
    let points = sweep_grid(1_000, 42, 1);
    let first =
        sweep_csv(&SweepRunner::new(16).run(&points, |_, p| ahbpower_bench::run_sweep_point(p)));
    for _ in 0..3 {
        let again = sweep_csv(&run_sweep(&points, 16));
        assert_eq!(first, again);
    }
}
