//! Property tests for the analyzer findings stream: every `Report`,
//! whatever its subjects and messages contain, must render to JSONL that
//! the bench crate's validator accepts and its parser decodes back to
//! the original diagnostic fields — `repro analyze` pipes this exact
//! stream into `results/analyze.jsonl` for CI to archive.

use ahbpower_analyzer::{Diagnostic, Report};
use ahbpower_bench::{parse_json, validate_json, JsonValue};
use proptest::prelude::*;

/// The rule ids the verification passes actually emit.
const RULES: &[&str] = &[
    "verify/ring",
    "verify/arbiter",
    "verify/selfcheck",
    "atomics/relaxed",
    "atomics/audited",
    "atomics/fence-pair",
    "lint/unwrap",
];

/// Characters that stress the JSON escaper: escapes, control chars,
/// multi-byte UTF-8 — the kind of content a counterexample message
/// (with its `Debug`-formatted events) can carry.
fn palette(idx: u8) -> char {
    match idx {
        0 => '"',
        1 => '\\',
        2 => '\n',
        3 => '\u{1}',
        4 => '\t',
        5 => '{',
        6 => '}',
        7 => ':',
        8 => ',',
        9 => '\u{e9}',
        10 => '\u{1f980}',
        _ => 'x',
    }
}

fn field<'v>(doc: &'v JsonValue, key: &str) -> Option<&'v JsonValue> {
    match doc {
        JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn text(doc: &JsonValue, key: &str) -> String {
    match field(doc, key) {
        Some(JsonValue::String(s)) => s.clone(),
        other => panic!("{key} must be a string, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn findings_jsonl_round_trips_through_the_bench_parser(
        entries in prop::collection::vec(
            (
                0usize..RULES.len(),
                prop::collection::vec(0u8..12, 0..24), // subject
                prop::collection::vec(0u8..12, 1..48), // message
                0usize..10_001, // line; the top value means "no line"
                any::<bool>(),  // error?
            ),
            1..12,
        )
    ) {
        let diagnostics: Vec<Diagnostic> = entries
            .iter()
            .map(|(rule, subject, message, line, is_error)| {
                let rule = RULES[*rule];
                let subject: String = subject.iter().map(|&c| palette(c)).collect();
                let message: String = message.iter().map(|&c| palette(c)).collect();
                let d = if *is_error {
                    Diagnostic::error(rule, subject, message)
                } else {
                    Diagnostic::warning(rule, subject, message)
                };
                if *line < 10_000 {
                    d.at_line(*line)
                } else {
                    d
                }
            })
            .collect();
        let report = Report::from_diagnostics(diagnostics.clone());
        let jsonl = report.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        prop_assert_eq!(lines.len(), diagnostics.len(), "one JSONL line per finding");

        for (line_text, d) in lines.iter().zip(&diagnostics) {
            prop_assert!(
                validate_json(line_text).is_ok(),
                "findings line must validate: {}",
                line_text
            );
            let doc = parse_json(line_text).expect("validated line parses");
            prop_assert_eq!(text(&doc, "event"), "diagnostic");
            prop_assert_eq!(text(&doc, "rule"), d.rule);
            prop_assert_eq!(
                text(&doc, "message"),
                d.message.clone(),
                "message survives escaping"
            );
            // An empty subject is omitted from the object entirely.
            match field(&doc, "subject") {
                Some(JsonValue::String(s)) => prop_assert_eq!(s, &d.subject),
                Some(other) => prop_assert!(false, "subject must be a string: {:?}", other),
                None => prop_assert!(d.subject.is_empty(), "only empty subjects are omitted"),
            }
            match (field(&doc, "line"), d.line) {
                (Some(v), Some(l)) => prop_assert_eq!(v.as_u64(), Some(l as u64)),
                (None, None) => {}
                (got, want) => prop_assert!(false, "line mismatch: {:?} vs {:?}", got, want),
            }
        }
    }
}
