//! End-to-end tests for the sharded serving plane: N worker shards
//! behind one thread-pool HTTP server, merged `/events`, `/query`,
//! `/status`, `/healthz` and `/metrics` with `?shard=` drill-down,
//! connection-limit load shedding, and the in-process load generator.

use std::time::Duration;

use ahbpower::telemetry::AnomalyConfig;
use ahbpower_bench::{
    http_get, loadgen_report_json, parse_json, run_loadgen, serve, validate_json, JsonValue,
    LoadgenConfig, ScenarioMix, ServeConfig, SHARD_SEED_STRIDE,
};

const TIMEOUT: Duration = Duration::from_secs(10);

fn sharded_config(shards: usize, max_slices: u64) -> ServeConfig {
    ServeConfig {
        mix: ScenarioMix::Paper,
        slice_cycles: 5_000,
        seed: 2003,
        max_slices: Some(max_slices),
        anomaly: AnomalyConfig::default().with_warmup_windows(4),
        shards,
        ..ServeConfig::default()
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ahb_sharded_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls merged `/status` until every shard drained its slice budget.
fn wait_for_slices(addr: &str, want: u64) -> JsonValue {
    for _ in 0..400 {
        let status = http_get(addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(want) {
            return doc;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("shards never completed {want} slices");
}

fn energy_total(addr: &str, path: &str) -> f64 {
    let resp = http_get(addr, path, TIMEOUT).expect("query");
    assert_eq!(resp.status, 200, "{path}: {}", resp.body);
    validate_json(&resp.body).expect("query JSON validates");
    let doc = parse_json(&resp.body).expect("query parses");
    doc.get("points")
        .and_then(JsonValue::as_array)
        .expect("points")
        .iter()
        .map(|p| p.get("sum").and_then(JsonValue::as_f64).expect("sum"))
        .sum()
}

#[test]
fn merged_plane_aggregates_and_drills_down() {
    let dir = tmp_dir("plane");
    let cfg = ServeConfig {
        results_dir: Some(dir.clone()),
        ..sharded_config(2, 3)
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let doc = wait_for_slices(&addr, 6);

    // Merged /status: plane-level fields plus per-shard detail.
    assert_eq!(doc.get("shards").and_then(JsonValue::as_u64), Some(2));
    let merged_energy = doc
        .get("total_energy_j")
        .and_then(JsonValue::as_f64)
        .expect("total_energy_j");
    assert!(merged_energy > 0.0);
    let detail = doc
        .get("shard_detail")
        .and_then(JsonValue::as_array)
        .expect("shard_detail");
    assert_eq!(detail.len(), 2);
    let detail_sum: f64 = detail
        .iter()
        .map(|d| {
            d.get("total_energy_j")
                .and_then(JsonValue::as_f64)
                .expect("shard energy")
        })
        .sum();
    assert!(
        (merged_energy - detail_sum).abs() <= 1e-9 * merged_energy,
        "status energy {merged_energy} != shard detail sum {detail_sum}"
    );
    // Seed rotation: shard k runs at seed + k * stride, and the two
    // shards genuinely simulated different traffic.
    let seeds: Vec<u64> = detail
        .iter()
        .map(|d| d.get("seed").and_then(JsonValue::as_u64).expect("seed"))
        .collect();
    assert_eq!(seeds, vec![2003, 2003 + SHARD_SEED_STRIDE]);
    let energies: Vec<f64> = detail
        .iter()
        .map(|d| d.get("total_energy_j").and_then(JsonValue::as_f64).unwrap())
        .collect();
    assert_ne!(
        energies[0].to_bits(),
        energies[1].to_bits(),
        "different seed lanes must produce different energy"
    );

    // Per-shard /status drill-down keeps the single-shard shape.
    for k in 0..2u64 {
        let resp = http_get(&addr, &format!("/status?shard={k}"), TIMEOUT).expect("shard status");
        assert_eq!(resp.status, 200);
        let sdoc = parse_json(&resp.body).expect("shard status parses");
        assert_eq!(sdoc.get("shard").and_then(JsonValue::as_u64), Some(k));
        assert_eq!(sdoc.get("slices").and_then(JsonValue::as_u64), Some(3));
    }
    let bad = http_get(&addr, "/status?shard=2", TIMEOUT).expect("bad shard");
    assert_eq!(bad.status, 400);

    // ACCEPTANCE: merged /query energy equals the sum of the per-shard
    // observatory totals to 1e-9, end-to-end over HTTP, at every level.
    for step in [1u64, 10, 100] {
        let merged = energy_total(&addr, &format!("/query?series=energy&step={step}"));
        let per_shard: f64 = (0..2)
            .map(|k| {
                energy_total(
                    &addr,
                    &format!("/query?series=energy&step={step}&shard={k}"),
                )
            })
            .sum();
        assert!(merged > 0.0, "step {step} returned energy");
        assert!(
            (merged - per_shard).abs() <= 1e-9 * merged.abs(),
            "step {step}: merged {merged} != per-shard sum {per_shard}"
        );
    }
    // The /query totals agree with the /status aggregate as well.
    let q = energy_total(&addr, "/query?series=energy&step=1");
    assert!(
        (q - merged_energy).abs() <= 1e-9 * merged_energy,
        "query {q} vs status {merged_energy}"
    );

    // Merged /healthz names the plane; drill-down answers per shard.
    let health = http_get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let hdoc = parse_json(&health.body).expect("healthz parses");
    assert_eq!(hdoc.get("shards").and_then(JsonValue::as_u64), Some(2));
    let health0 = http_get(&addr, "/healthz?shard=1", TIMEOUT).expect("shard healthz");
    assert_eq!(health0.status, 200);

    // Merged /metrics: summed counters, plane gauges, per-shard labels.
    let metrics = http_get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert!(metrics.body.contains("serve_shards 2"));
    assert!(metrics.body.contains("serve_http_shed_total"));
    assert!(metrics.body.contains("shard=\"0\""));
    assert!(metrics.body.contains("shard=\"1\""));
    let shard_metrics = http_get(&addr, "/metrics?shard=1", TIMEOUT).expect("shard metrics");
    assert!(
        !shard_metrics.body.contains("shard=\"1\""),
        "drill-down serves the shard's own registry without plane labels"
    );

    // Merged /events: dot-joined cursors, per-shard loss accounting,
    // shard-tagged events.
    let events = http_get(&addr, "/events?since=0&max=64", TIMEOUT).expect("events");
    assert_eq!(events.status, 200);
    validate_json(&events.body).expect("merged events JSON validates");
    let edoc = parse_json(&events.body).expect("events parse");
    let next = edoc
        .get("next")
        .and_then(JsonValue::as_str)
        .expect("merged cursor is a string");
    assert_eq!(
        next.split('.').count(),
        2,
        "one component per shard: {next}"
    );
    assert_eq!(
        edoc.get("dropped")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(2)
    );
    let evs = edoc
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    assert!(!evs.is_empty());
    for e in evs {
        let shard = e.get("shard").and_then(JsonValue::as_u64).expect("tag");
        assert!(shard < 2);
    }
    // Resuming from the returned cursor never replays: drain to the
    // end, then poll again from there and expect nothing.
    let mut cursor = next.to_string();
    for _ in 0..200 {
        let resp = http_get(&addr, &format!("/events?since={cursor}&max=4096"), TIMEOUT)
            .expect("drain events");
        let d = parse_json(&resp.body).expect("drain parses");
        cursor = d
            .get("next")
            .and_then(JsonValue::as_str)
            .expect("cursor")
            .to_string();
        let n = d
            .get("events")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len);
        if n == 0 {
            break;
        }
    }
    // Per-shard drill-down keeps the numeric single-ring wire format.
    let shard_events = http_get(&addr, "/events?since=0&max=16&shard=1", TIMEOUT).expect("events");
    let sdoc = parse_json(&shard_events.body).expect("shard events parse");
    assert!(
        sdoc.get("next").and_then(JsonValue::as_u64).is_some(),
        "single-shard cursor stays numeric"
    );
    // A malformed merged cursor is a clean 400.
    let bad = http_get(&addr, "/events?since=1.2.3.4&max=16", TIMEOUT).expect("bad cursor");
    assert_eq!(bad.status, 400);

    // Shutdown: summary aggregates both shards; the flush writes
    // per-shard artifact files and per-shard flight-recorder dirs.
    let quit = http_get(&addr, "/quit", TIMEOUT).expect("quit");
    assert_eq!(quit.status, 200);
    let summary = handle.wait().expect("clean shutdown");
    assert_eq!(summary.shards, 2);
    assert_eq!(summary.slices, 6);
    assert_eq!(summary.cycles, 30_000);
    assert_eq!(
        summary.flushed.len(),
        6,
        "final jsonl + status + (events + observatory) x 2 shards"
    );
    for name in [
        "serve_final.jsonl",
        "serve_status.json",
        "events.jsonl",
        "observatory.jsonl",
        "events-shard1.jsonl",
        "observatory-shard1.jsonl",
    ] {
        assert!(dir.join(name).is_file(), "{name} flushed");
    }
    for shard in 0..2 {
        let rec = dir.join("flightrec").join(format!("shard-{shard}"));
        assert!(rec.is_dir(), "shard {shard} flight-recorder dir");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_limit_sheds_with_503() {
    // One connection slot: a parked long-poll holds it, so the next
    // connection must be shed with 503 — and the shed counter surfaces
    // in /metrics once the slot frees up.
    let cfg = ServeConfig {
        max_connections: 1,
        http_threads: 2,
        ..sharded_config(1, 1)
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Park a long-poll on a cursor far past the ring so it waits out
    // its full timeout while holding the only slot.
    let parked_addr = addr.clone();
    let parked = std::thread::spawn(move || {
        http_get(
            &parked_addr,
            "/events?since=999999999&timeout_ms=5000",
            TIMEOUT,
        )
    });
    // Let the parked poll win the race for the only slot before any
    // probe connects — otherwise a fast probe could hold the slot and
    // shed the poll instead.
    std::thread::sleep(Duration::from_millis(300));

    let mut shed_seen = false;
    for _ in 0..200 {
        match http_get(&addr, "/healthz", Duration::from_secs(2)) {
            Ok(r) if r.status == 503 => {
                assert!(
                    r.body.contains("shed"),
                    "503 body names the shed: {}",
                    r.body
                );
                shed_seen = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(shed_seen, "the admission limit must shed with 503");
    let parked_resp = parked
        .join()
        .expect("parked poll returns")
        .expect("poll ok");
    assert_eq!(parked_resp.status, 200, "the admitted poll still answers");

    // The slot is free again: /metrics answers and counts the sheds.
    let metrics = http_get(&addr, "/metrics", TIMEOUT).expect("metrics after shed");
    assert_eq!(metrics.status, 200);
    let shed_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("serve_http_shed_total"))
        .expect("shed counter exported");
    let count: f64 = shed_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("counter value");
    assert!(count >= 1.0, "sheds counted: {shed_line}");

    let quit = http_get(&addr, "/quit", TIMEOUT).expect("quit");
    assert_eq!(quit.status, 200);
    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.shed >= 1, "summary carries the shed count");
}

#[test]
fn loadgen_drives_sharded_server_and_reports() {
    // The in-process spelling of `repro loadgen`: a 2-shard server with
    // a drained slice budget, driven briefly from 2 threads. Debug
    // builds are slow, so assert structure and error-freeness here; the
    // >= 1000 req/s acceptance bar runs in release via check.sh.
    let handle = serve(sharded_config(2, 1)).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    wait_for_slices(&addr, 2);

    let cfg = LoadgenConfig {
        addr: addr.clone(),
        concurrency: 2,
        duration: Duration::from_millis(800),
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg);
    assert!(report.requests() > 0, "loadgen drove requests");
    assert_eq!(report.errors(), 0, "no transport errors on loopback");
    assert_eq!(report.ok() + report.shed(), report.requests());
    assert!(report.throughput_rps() > 0.0);
    let json = loadgen_report_json(&report, 2);
    validate_json(&json).expect("report JSON validates");
    let doc = parse_json(&json).expect("report parses");
    assert_eq!(
        doc.get("bench").and_then(JsonValue::as_str),
        Some("serve_loadgen")
    );
    let endpoints = doc
        .get("endpoints")
        .and_then(JsonValue::as_array)
        .expect("endpoints");
    assert_eq!(endpoints.len(), cfg.endpoints.len());
    for e in endpoints {
        assert!(
            e.get("p99_us").and_then(JsonValue::as_f64).is_some(),
            "every endpoint reports latency quantiles"
        );
    }

    let quit = http_get(&addr, "/quit", TIMEOUT).expect("quit");
    assert_eq!(quit.status, 200);
    handle.wait().expect("clean shutdown");
}
