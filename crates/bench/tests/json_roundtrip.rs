//! Property tests pitting the workspace's two hand-rolled JSON halves
//! against each other: core's writer (`json_escape`, `Event::to_json_obj`)
//! must produce documents the bench crate's validator accepts and its
//! parser decodes back to the original values — quotes, backslashes,
//! control characters, multi-byte UTF-8 and all.

use ahbpower::telemetry::{json_escape, Event, EventKind};
use ahbpower_bench::{parse_json, validate_json, JsonValue};
use proptest::prelude::*;

/// Palette biased toward the characters the escaper must handle: the
/// two-character escapes, raw control characters (low and high end of
/// the `\u00XX` range), escape-lookalike letters, and multi-byte UTF-8.
fn palette(idx: u8) -> char {
    match idx {
        0 => '"',
        1 => '\\',
        2 => '\n',
        3 => '\u{0}',
        4 => '\u{1f}',
        5 => '\t',
        6 => '\r',
        7 => 'u',
        8 => 'n',
        9 => '\u{e9}',     // two UTF-8 bytes
        10 => '\u{4e16}',  // three UTF-8 bytes
        11 => '\u{1f980}', // four UTF-8 bytes
        _ => 'a',
    }
}

/// Pulls `key` out of a parsed top-level object.
fn field<'v>(doc: &'v JsonValue, key: &str) -> &'v JsonValue {
    match doc {
        JsonValue::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {key}")),
        other => panic!("expected object, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escaped_payloads_round_trip_through_the_parser(
        raw in prop::collection::vec(0u8..13, 0..48)
    ) {
        let raw: String = raw.into_iter().map(palette).collect();
        let doc = format!("{{\"payload\":\"{}\"}}", json_escape(&raw));
        prop_assert!(
            validate_json(&doc).is_ok(),
            "escaped document must validate: {doc}"
        );
        let parsed = parse_json(&doc).expect("validated document parses");
        match field(&parsed, "payload") {
            JsonValue::String(s) => prop_assert_eq!(s, &raw),
            other => prop_assert!(false, "payload must decode to a string, got {:?}", other),
        }
    }

    #[test]
    fn event_json_objects_parse_back_to_their_fields(
        kind_idx in 0usize..EventKind::ALL.len(),
        seq in any::<u64>(),
        slice in any::<u64>(),
        txn in any::<u64>(),
        window in any::<u64>(),
        cycle in any::<u64>(),
        tag in any::<u32>(),
        a_bits in any::<u64>(),
        b in -1e12f64..1e12,
    ) {
        let a = f64::from_bits(a_bits);
        let e = Event {
            seq,
            kind: EventKind::ALL[kind_idx],
            slice,
            txn,
            window,
            cycle,
            tag,
            a,
            b,
        };
        let doc = e.to_json_obj();
        prop_assert!(validate_json(&doc).is_ok(), "event JSON must validate: {doc}");
        let parsed = parse_json(&doc).expect("validated document parses");
        match field(&parsed, "event") {
            JsonValue::String(s) => prop_assert_eq!(s.as_str(), e.kind.name()),
            other => prop_assert!(false, "event kind must be a string, got {:?}", other),
        }
        // u64 fields survive only within f64's exact-integer range, so
        // compare through the same lossy lens the reader uses.
        match field(&parsed, "txn") {
            JsonValue::Number(n) => prop_assert_eq!(*n, txn as f64),
            other => prop_assert!(false, "txn must be a number, got {:?}", other),
        }
        match field(&parsed, "a") {
            JsonValue::Number(n) if a.is_finite() => prop_assert_eq!(n.to_bits(), a.to_bits()),
            JsonValue::Null if !a.is_finite() => {}
            other => prop_assert!(false, "a must mirror finiteness, got {:?}", other),
        }
        match field(&parsed, "b") {
            JsonValue::Number(n) => prop_assert_eq!(n.to_bits(), b.to_bits()),
            other => prop_assert!(false, "b must be a number, got {:?}", other),
        }
    }
}
