//! The `repro trace` acceptance invariants, enforced in CI: on both
//! shipped workloads the attributed energy equals the instruction
//! ledger's total within 1e-9 J, and the trace-event export is valid
//! JSON with one Perfetto track (thread_name metadata event) per master.

use ahbpower::telemetry::{to_folded, to_trace_events, TraceEventMeta};
use ahbpower_bench::{
    run_paper_experiment_traced, run_soc_experiment_traced, validate_json, PaperRun,
};

const CYCLES: u64 = 20_000;
const SEED: u64 = 2003;

fn check_workload(label: &str, mut r: PaperRun) {
    r.session.finish_txn();
    let tracer = r.session.txn_tracer().expect("traced run carries a tracer");

    // Conservation: the attribution table books every observed cycle's
    // energy exactly once, so it must reproduce the ledger total.
    let attributed = tracer.attribution().total_energy();
    let ledger = r.session.ledger().total_energy();
    assert!(ledger > 0.0, "{label}: the run must consume energy");
    assert!(
        (attributed - ledger).abs() <= 1e-9,
        "{label}: attributed {attributed} J != ledger {ledger} J"
    );
    assert_eq!(
        tracer.attribution().cycles(),
        CYCLES,
        "{label}: every cycle is attributed"
    );
    assert!(tracer.completed() > 0, "{label}: transactions completed");

    // Export shape: valid JSON, one thread_name track per master.
    let meta = TraceEventMeta {
        scenario: label.to_string(),
        n_masters: r.config.n_masters,
        period_ps: r.config.period_ps(),
        seed: SEED,
    };
    let json = to_trace_events(tracer.records(), r.session.trace_points(), &meta);
    validate_json(&json).unwrap_or_else(|e| panic!("{label}: invalid trace-event JSON: {e}"));
    assert_eq!(
        json.matches("\"thread_name\"").count(),
        r.config.n_masters,
        "{label}: one Perfetto track per master"
    );
    for m in 0..r.config.n_masters {
        assert!(
            json.contains(&format!("\"name\":\"M{m}\"")),
            "{label}: master {m} track is named"
        );
    }

    // The folded stacks parse as `frames... <integer>` lines and their
    // femtojoule counts sum back to the attributed total (up to the <1 fJ
    // per-cell rounding the format drops).
    let folded = to_folded(tracer.attribution());
    let mut folded_fj = 0u64;
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack then count");
        assert_eq!(stack.split(';').count(), 4, "master;slave;instr;block");
        folded_fj += count.parse::<u64>().expect("integer femtojoules");
    }
    let attributed_fj = attributed * 1e15;
    let slack = tracer.attribution().len() as f64 * 4.0 + 1.0;
    assert!(
        (folded_fj as f64 - attributed_fj).abs() <= slack,
        "{label}: folded {folded_fj} fJ vs attributed {attributed_fj} fJ"
    );
}

#[test]
fn paper_testbench_conserves_energy_and_exports_cleanly() {
    check_workload(
        "paper_testbench",
        run_paper_experiment_traced(CYCLES, SEED, 4096),
    );
}

#[test]
fn soc_scenario_conserves_energy_and_exports_cleanly() {
    check_workload(
        "soc_scenario",
        run_soc_experiment_traced(CYCLES, SEED, 4096),
    );
}
