//! End-to-end tests for the live monitoring service: every endpoint
//! answers over a real TCP socket, `/quit` shuts down gracefully, and
//! the final flush leaves complete artifacts behind.

use std::time::Duration;

use ahbpower::telemetry::AnomalyConfig;
use ahbpower::SubBlock;
use ahbpower_bench::{
    http_get, parse_json, serve, validate_json, Injection, JsonValue, ScenarioMix, ServeConfig,
};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServeConfig {
    ServeConfig {
        mix: ScenarioMix::Paper,
        slice_cycles: 5_000,
        seed: 2003,
        max_slices: Some(3),
        anomaly: AnomalyConfig::default().with_warmup_windows(4),
        ..ServeConfig::default()
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ahb_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn endpoints_answer_with_valid_payloads() {
    let handle = serve(test_config()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let health = http_get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    validate_json(&health.body).expect("healthz JSON is valid");
    let hdoc = parse_json(&health.body).expect("healthz parses");
    assert_eq!(hdoc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert!(
        hdoc.get("degraded").and_then(JsonValue::as_bool).is_some(),
        "healthz reports the degraded flag"
    );
    assert!(
        hdoc.get("high_water").is_some(),
        "healthz carries the slice/window high-water marks"
    );

    // Give the worker at least one slice before inspecting metrics:
    // poll /status until slices > 0 (bounded retries, no sleeps needed
    // beyond the poll interval).
    let mut slices = 0u64;
    for _ in 0..200 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        assert_eq!(status.status, 200);
        validate_json(&status.body).expect("status JSON is valid");
        let doc = parse_json(&status.body).expect("status JSON parses");
        slices = doc
            .get("slices")
            .and_then(JsonValue::as_u64)
            .expect("slices field");
        if slices > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(slices > 0, "worker never completed a slice");

    let status = http_get(&addr, "/status", TIMEOUT).expect("status");
    let doc = parse_json(&status.body).expect("status JSON parses");
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        doc.get("scenario_mix").and_then(JsonValue::as_str),
        Some("paper")
    );
    let energy = doc
        .get("total_energy_j")
        .and_then(JsonValue::as_f64)
        .expect("total_energy_j");
    assert!(energy > 0.0, "a completed slice books energy");
    let instructions = doc
        .get("instructions")
        .and_then(JsonValue::as_array)
        .expect("instructions array");
    assert!(!instructions.is_empty());

    // The startup replay self-calibration ran before the first slice,
    // so its numbers are already live in the status document.
    let replay = doc.get("replay").expect("replay object");
    assert!(replay.get("trace_cycles").and_then(JsonValue::as_u64) > Some(0));
    assert!(replay.get("variants").and_then(JsonValue::as_u64) > Some(0));
    assert!(
        replay
            .get("cycles_per_sec")
            .and_then(JsonValue::as_f64)
            .expect("cycles_per_sec")
            > 0.0,
        "calibration measured a positive replay throughput"
    );

    let metrics = http_get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("# TYPE ahb_cycles_total counter"));
    assert!(metrics.body.contains("power_instruction_energy_joules"));
    assert!(metrics.body.contains("serve_replay_cycles_per_second"));
    assert!(metrics.body.contains("serve_uptime_seconds"));
    assert!(metrics
        .body
        .contains("serve_window_power_microwatts_bucket"));

    let missing = http_get(&addr, "/nope", TIMEOUT).expect("404 route");
    assert_eq!(missing.status, 404);

    let summary = handle.wait().expect("clean shutdown");
    assert_eq!(summary.slices, 3);
    assert_eq!(summary.cycles, 15_000);
    assert!(summary.total_energy_j > 0.0);
}

#[test]
fn quit_flushes_complete_artifacts() {
    let dir = tmp_dir("quit");
    let cfg = ServeConfig {
        max_slices: None,
        results_dir: Some(dir.clone()),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Wait for one slice so the flush has content.
    for _ in 0..200 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) > Some(0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    let quit = http_get(&addr, "/quit", TIMEOUT).expect("quit");
    assert_eq!(quit.status, 200);
    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.slices > 0);
    assert_eq!(
        summary.flushed.len(),
        4,
        "jsonl + status + events.jsonl + observatory.jsonl"
    );

    // The flushed files are complete: the JSONL is line-by-line valid
    // JSON, the status document parses whole, and no .tmp staging file
    // survived the atomic rename.
    let jsonl = std::fs::read_to_string(dir.join("serve_final.jsonl")).expect("jsonl flushed");
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        validate_json(line).expect("every JSONL line is valid JSON");
    }
    let status = std::fs::read_to_string(dir.join("serve_status.json")).expect("status flushed");
    let doc = parse_json(&status).expect("final status parses");
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events flushed");
    assert!(!events.is_empty(), "at least the export header is written");
    for line in events.lines() {
        validate_json(line).expect("every event line is valid JSON");
    }
    let obs = std::fs::read_to_string(dir.join("observatory.jsonl")).expect("observatory flushed");
    assert!(!obs.is_empty(), "the retention snapshot is written");
    for line in obs.lines() {
        validate_json(line).expect("every observatory line is valid JSON");
    }
    // /quit also leaves a post-mortem bundle behind (shard 0 is the
    // only shard, so its subdirectory holds everything).
    let flightrec: Vec<_> = std::fs::read_dir(dir.join("flightrec").join("shard-0"))
        .expect("flightrec dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .collect();
    assert!(
        !flightrec.is_empty(),
        "quit writes a flight-recorder bundle"
    );
    for entry in &flightrec {
        let body = std::fs::read_to_string(entry.path()).expect("bundle reads");
        validate_json(&body).expect("bundle is valid JSON");
    }
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("results dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "no partial .tmp files survive");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_fault_is_detected_and_reported() {
    // Paper-only mix, deterministic seed: arbiter coefficients tripled
    // from slice 3 onward (~+10% total energy, comfortably past the 5%
    // deviation gate) must raise anomalies once warmup has passed, and
    // they surface in /status and the Prometheus export.
    let cfg = ServeConfig {
        slice_cycles: 10_000,
        max_slices: Some(6),
        anomaly: AnomalyConfig::default().with_warmup_windows(6),
        inject: Some(Injection {
            block: SubBlock::Arb,
            factor: 3.0,
            at_slice: 3,
        }),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Wait until the slice budget drains.
    for _ in 0..400 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    let status = http_get(&addr, "/status", TIMEOUT).expect("status");
    let doc = parse_json(&status.body).expect("status parses");
    let anomalies = doc.get("anomalies").expect("anomalies object");
    let count = anomalies
        .get("count")
        .and_then(JsonValue::as_u64)
        .expect("count");
    assert!(count > 0, "doubled arbiter coefficients must be flagged");
    let last = anomalies.get("last").expect("last event");
    let deviation = last
        .get("deviation_pct")
        .and_then(JsonValue::as_f64)
        .expect("deviation");
    assert!(deviation > 0.0, "injection raises energy above baseline");

    let metrics = http_get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert!(metrics.body.contains("energy_anomaly_events_total"));

    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.anomalies > 0);
}

#[test]
fn clean_paper_run_stays_silent() {
    let cfg = ServeConfig {
        slice_cycles: 10_000,
        max_slices: Some(6),
        anomaly: AnomalyConfig::default().with_warmup_windows(6),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    for _ in 0..400 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let summary = handle.wait().expect("clean shutdown");
    assert_eq!(summary.slices, 6);
    assert_eq!(
        summary.anomalies, 0,
        "an uninjected paper run must not alarm"
    );
}

/// Pulls a `u64` field out of a parsed event object.
fn event_u64(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("event field {key} missing"))
}

#[test]
fn dashboard_events_stream_and_causal_trace() {
    // One injected run exercises the whole observability surface: the
    // self-hosted dashboard, the long-poll /events stream, the stage
    // histograms, and — after shutdown — the flushed events.jsonl whose
    // every AnomalyFlagged must chain through an EnergyBooked to a
    // TxnComplete of the same window and slice.
    let dir = tmp_dir("events");
    let cfg = ServeConfig {
        slice_cycles: 10_000,
        max_slices: Some(6),
        anomaly: AnomalyConfig::default().with_warmup_windows(6),
        inject: Some(Injection {
            block: SubBlock::Arb,
            factor: 3.0,
            at_slice: 3,
        }),
        results_dir: Some(dir.clone()),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // The dashboard answers before the first slice lands: one
    // self-contained HTML document that polls the JSON endpoints.
    let dash = http_get(&addr, "/", TIMEOUT).expect("dashboard");
    assert_eq!(dash.status, 200);
    assert!(dash.body.contains("<canvas"), "dashboard draws a sparkline");
    assert!(
        dash.body.contains("/events?since="),
        "dashboard polls the event stream"
    );

    // Long-poll /events until completed transactions stream out.
    let mut saw_txn = false;
    for _ in 0..200 {
        let resp =
            http_get(&addr, "/events?since=0&max=4096&timeout_ms=2000", TIMEOUT).expect("events");
        assert_eq!(resp.status, 200);
        validate_json(&resp.body).expect("events payload is valid JSON");
        if resp.body.contains("\"event\":\"TxnComplete\"") {
            saw_txn = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(saw_txn, "the live stream must carry TxnComplete events");
    assert!(
        handle.events_bus().published() > 0,
        "the shared ring records publishes"
    );

    // Wait until the slice budget drains, then inspect the new fields.
    for _ in 0..400 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let status = http_get(&addr, "/status", TIMEOUT).expect("status");
    let doc = parse_json(&status.body).expect("status parses");
    let events_obj = doc.get("events").expect("events object");
    assert_eq!(
        events_obj.get("enabled").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert!(events_obj.get("published").and_then(JsonValue::as_u64) > Some(0));
    let per_master = doc
        .get("per_master_j")
        .and_then(JsonValue::as_array)
        .expect("per-master energy array");
    assert!(!per_master.is_empty());
    let stages = doc.get("stages").expect("stages object");
    let sim = stages.get("sim_us").expect("sim stage");
    assert!(sim.get("count").and_then(JsonValue::as_u64) > Some(0));
    assert!(sim.get("p95").and_then(JsonValue::as_f64).is_some());

    let metrics = http_get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert!(metrics
        .body
        .contains("energy_anomaly_baseline_updates_total"));
    assert!(metrics.body.contains("serve_stage_duration_microseconds"));
    assert!(metrics.body.contains("serve_events_published_total"));
    assert!(metrics.body.contains("power_master_energy_joules"));

    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.anomalies > 0, "injection must flag anomalies");

    // Causal-chain check on the flushed log: every flagged window links
    // through an energy booking to a completed transaction of the same
    // slice — the drill-down path the dashboard walks.
    let jsonl = std::fs::read_to_string(dir.join("events.jsonl")).expect("events flushed");
    let mut flagged = Vec::new();
    let mut booked_windows = std::collections::HashSet::new();
    let mut txn_keys = std::collections::HashSet::new();
    let mut saw_replay_start = false;
    let mut saw_replay_done = false;
    for line in jsonl.lines() {
        let doc = parse_json(line).expect("event line parses");
        match doc.get("event").and_then(JsonValue::as_str) {
            Some("AnomalyFlagged") => {
                flagged.push((event_u64(&doc, "window"), event_u64(&doc, "slice")));
            }
            Some("EnergyBooked") => {
                booked_windows.insert(event_u64(&doc, "window"));
            }
            Some("TxnComplete") => {
                txn_keys.insert((event_u64(&doc, "window"), event_u64(&doc, "slice")));
            }
            Some("ReplayStart") => saw_replay_start = true,
            Some("ReplayDone") => {
                saw_replay_done = true;
                assert!(
                    doc.get("a").and_then(JsonValue::as_f64).expect("a field") > 0.0,
                    "ReplayDone carries the measured cycles/s"
                );
            }
            _ => {}
        }
    }
    assert!(!flagged.is_empty(), "the log records the flagged windows");
    assert!(
        saw_replay_start && saw_replay_done,
        "the startup calibration brackets itself with ReplayStart/ReplayDone"
    );
    for (window, slice) in flagged {
        assert!(
            booked_windows.contains(&window),
            "window {window} flagged without an EnergyBooked"
        );
        assert!(
            txn_keys.contains(&(window, slice)),
            "window {window} (slice {slice}) has no TxnComplete to drill into"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_endpoint_conserves_energy_across_levels() {
    // One run, three zoom levels: the energy sum reported by /query must
    // be identical (to 1e-9 relative) at raw, 10x and 100x resolution,
    // and the step parameter must select the documented level.
    let cfg = ServeConfig {
        slice_cycles: 10_000,
        max_slices: Some(6),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    for _ in 0..400 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    let mut sums = Vec::new();
    for (step, want_factor) in [(1u64, 1u64), (10, 10), (100, 100)] {
        let path = format!("/query?series=energy&step={step}");
        let resp = http_get(&addr, &path, TIMEOUT).expect("query");
        assert_eq!(resp.status, 200, "step {step}");
        validate_json(&resp.body).expect("query payload is valid JSON");
        let doc = parse_json(&resp.body).expect("query parses");
        assert_eq!(
            doc.get("series").and_then(JsonValue::as_str),
            Some("energy")
        );
        assert_eq!(
            doc.get("factor").and_then(JsonValue::as_u64),
            Some(want_factor),
            "step {step} selects the {want_factor}x level"
        );
        let points = doc
            .get("points")
            .and_then(JsonValue::as_array)
            .expect("points array");
        assert!(!points.is_empty(), "step {step} returns data");
        let total: f64 = points
            .iter()
            .map(|p| p.get("sum").and_then(JsonValue::as_f64).expect("sum"))
            .sum();
        let windows: u64 = points
            .iter()
            .map(|p| {
                p.get("windows")
                    .and_then(JsonValue::as_u64)
                    .expect("windows")
            })
            .sum();
        sums.push((step, total, windows));
    }
    let (_, raw_sum, raw_windows) = sums[0];
    assert!(raw_sum > 0.0, "six slices book energy");
    for &(step, total, windows) in &sums[1..] {
        assert!(
            (total - raw_sum).abs() <= 1e-9 * raw_sum.abs(),
            "step {step}: {total} vs raw {raw_sum} — cascade lost energy"
        );
        assert_eq!(windows, raw_windows, "step {step} covers every raw window");
    }

    // Parameter validation: every failure mode answers a clean 400
    // with a message naming the problem, never a 500 or a silent
    // fallback to defaults.
    let missing = http_get(&addr, "/query", TIMEOUT).expect("missing series");
    assert_eq!(missing.status, 400);
    let unknown = http_get(&addr, "/query?series=nope", TIMEOUT).expect("unknown series");
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("nope"));
    let zero_step = http_get(&addr, "/query?series=energy&step=0", TIMEOUT).expect("step=0");
    assert_eq!(zero_step.status, 400);
    assert!(zero_step.body.contains("step"), "{}", zero_step.body);
    let inverted = http_get(&addr, "/query?series=energy&from=9&to=3", TIMEOUT).expect("from > to");
    assert_eq!(inverted.status, 400);
    assert!(inverted.body.contains("empty range"), "{}", inverted.body);
    for bad in [
        "/query?series=energy&from=abc",
        "/query?series=energy&to=1.5",
        "/query?series=energy&step=-2",
    ] {
        let resp = http_get(&addr, bad, TIMEOUT).expect("non-numeric parameter");
        assert_eq!(resp.status, 400, "{bad} must answer 400");
        assert!(resp.body.contains("bad"), "{bad}: {}", resp.body);
    }
    let bad_shard = http_get(&addr, "/query?series=energy&shard=9", TIMEOUT).expect("bad shard");
    assert_eq!(bad_shard.status, 400);
    assert!(
        bad_shard.body.contains("out of range"),
        "{}",
        bad_shard.body
    );

    let summary = handle.wait().expect("clean shutdown");
    assert_eq!(summary.slices, 6);
}

#[test]
fn anomaly_writes_flight_recorder_bundle_with_causal_chain() {
    // An injected fault must leave post-mortem bundles behind while the
    // server is still running: JSON-valid, carrying the detector state,
    // the surrounding raw windows, and a causal chain that reaches a
    // TxnComplete of the flagged window.
    let dir = tmp_dir("flightrec");
    let cfg = ServeConfig {
        slice_cycles: 10_000,
        max_slices: Some(6),
        anomaly: AnomalyConfig::default().with_warmup_windows(6),
        inject: Some(Injection {
            block: SubBlock::Arb,
            factor: 3.0,
            at_slice: 3,
        }),
        results_dir: Some(dir.clone()),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    for _ in 0..400 {
        let status = http_get(&addr, "/status", TIMEOUT).expect("status");
        let doc = parse_json(&status.body).expect("status parses");
        if doc.get("slices").and_then(JsonValue::as_u64) == Some(6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // Status reports the bundle count before shutdown.
    let status = http_get(&addr, "/status", TIMEOUT).expect("status");
    let doc = parse_json(&status.body).expect("status parses");
    let bundles = doc
        .get("flightrec")
        .and_then(|f| f.get("bundles"))
        .and_then(JsonValue::as_u64)
        .expect("flightrec.bundles");
    assert!(bundles > 0, "anomalies must dump bundles while live");

    let rec_dir = dir.join("flightrec").join("shard-0");
    let mut saw_causal_txn = false;
    let entries: Vec<_> = std::fs::read_dir(&rec_dir)
        .expect("flightrec dir exists before shutdown")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .collect();
    assert!(!entries.is_empty(), "at least one anomaly bundle on disk");
    for entry in &entries {
        let body = std::fs::read_to_string(entry.path()).expect("bundle reads");
        validate_json(&body).expect("bundle is valid JSON");
        let bundle = parse_json(&body).expect("bundle parses");
        assert_eq!(
            bundle.get("reason").and_then(JsonValue::as_str),
            Some("anomaly")
        );
        assert!(bundle.get("detector").is_some(), "detector state captured");
        let raw = bundle
            .get("raw_windows")
            .and_then(JsonValue::as_array)
            .expect("raw window context");
        assert!(!raw.is_empty(), "surrounding raw windows captured");
        let causal = bundle.get("causal").expect("causal section");
        let txns = causal
            .get("txn_complete")
            .and_then(JsonValue::as_array)
            .expect("txn_complete array");
        if !txns.is_empty() {
            saw_causal_txn = true;
        }
    }
    assert!(
        saw_causal_txn,
        "at least one bundle's causal chain reaches a TxnComplete"
    );

    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.anomalies > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_in_slice_dumps_post_mortem_and_server_survives() {
    // A seeded panic inside the simulation slice must not take the HTTP
    // server down: the worker catches it, dumps a "panic" bundle, and
    // the endpoints keep answering until /quit.
    let dir = tmp_dir("panic");
    let cfg = ServeConfig {
        max_slices: None,
        panic_at_slice: Some(2),
        results_dir: Some(dir.clone()),
        ..test_config()
    };
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Wait for the panic bundle to land.
    let rec_dir = dir.join("flightrec").join("shard-0");
    let mut bundle = None;
    for _ in 0..400 {
        if let Ok(entries) = std::fs::read_dir(&rec_dir) {
            bundle = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|x| x == "json"));
            if bundle.is_some() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let bundle = bundle.expect("panic bundle written");
    let body = std::fs::read_to_string(&bundle).expect("bundle reads");
    validate_json(&body).expect("bundle is valid JSON");
    let doc = parse_json(&body).expect("bundle parses");
    assert_eq!(doc.get("reason").and_then(JsonValue::as_str), Some("panic"));

    // The server is still serving after the worker died.
    let health = http_get(&addr, "/healthz", TIMEOUT).expect("healthz after panic");
    assert_eq!(health.status, 200);
    let quit = http_get(&addr, "/quit", TIMEOUT).expect("quit");
    assert_eq!(quit.status, 200);
    let summary = handle.wait().expect("clean shutdown");
    assert!(summary.slices < 3, "the panic cut the run short");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injection_spec_parses() {
    let inj = Injection::parse("arb:2.0@3").expect("full spec");
    assert_eq!(inj.block, SubBlock::Arb);
    assert_eq!(inj.factor, 2.0);
    assert_eq!(inj.at_slice, 3);
    let inj = Injection::parse("dec:1.5").expect("default slice");
    assert_eq!(inj.block, SubBlock::Dec);
    assert_eq!(inj.at_slice, 2);
    assert!(Injection::parse("nope:2.0").is_none());
    assert!(Injection::parse("arb").is_none());
    assert!(Injection::parse("arb:x").is_none());
}
