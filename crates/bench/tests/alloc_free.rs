//! Proves the simulate→probe hot path is allocation-free with a counting
//! global allocator.
//!
//! Before the packed-bitmask snapshot, every `bus.step()` heap-allocated
//! three `Vec<bool>`s (hbusreq/hgrant/hsel) — ~3 allocations per cycle,
//! every cycle. These assertions pin the new behaviour:
//!
//! 1. the three probe styles observe pre-recorded snapshots with **zero**
//!    allocations;
//! 2. `bus.step()` itself is **zero**-allocation on write-only traffic
//!    (read completions are recorded into a master-side queue, the one
//!    remaining amortized allocation site);
//! 3. on the full paper testbench the allocation count does not scale with
//!    the cycle count (bounded bookkeeping, not per-cycle garbage).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use ahbpower::{AhbPowerModel, AnalysisConfig, FsmProbe, GlobalProbe, InlineProbe, PowerProbe};
use ahbpower_ahb::{AddressMap, AhbBusBuilder, BusSnapshot, MemorySlave, ScriptedMaster};
use ahbpower_bench::build_paper_bus;
use ahbpower_workloads::try_stream_script;

// One test body: the counter is process-global, so phases run sequentially
// instead of racing with a parallel test-harness sibling.
#[test]
fn hot_path_does_not_allocate_per_cycle() {
    let cfg = AnalysisConfig::paper_testbench();
    let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());

    // --- 1. Probes over a pre-recorded trace: exactly zero allocations. ---
    let mut bus = build_paper_bus(10_000, 2003);
    let trace: Vec<BusSnapshot> = (0..10_000).map(|_| *bus.step()).collect();
    let mut inline = InlineProbe::new(model.clone());
    let mut fsm_calib = InlineProbe::new(model.clone());
    for s in &trace {
        fsm_calib.observe(s);
    }
    let mut fsm = FsmProbe::from_calibration(fsm_calib.fsm().ledger());
    let mut global = GlobalProbe::new(model.clone());
    // Warm-up: the inline FSM lazily creates its (bounded, ~7-row)
    // instruction-ledger rows on first sight of each instruction.
    for s in &trace[..2_000] {
        inline.observe(s);
        fsm.observe(s);
        global.observe(s);
    }
    let before = allocations();
    for s in &trace[2_000..] {
        inline.observe(s);
        fsm.observe(s);
        global.observe(s);
    }
    assert_eq!(
        allocations() - before,
        0,
        "probe observe path must not allocate"
    );
    assert!(inline.total_energy() > 0.0);

    // --- 2. bus.step() on write-only traffic: exactly zero allocations. ---
    // (Write bursts only: read completions would grow the master's
    // read-record queue, the one remaining amortized allocation site.)
    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x8000))
        .master(Box::new(ScriptedMaster::new(
            try_stream_script(7, 800, 0x0, 2).expect("stream script params valid"),
        )))
        .slave(Box::new(MemorySlave::new(0x8000, 0, 0)))
        .slave(Box::new(MemorySlave::new(0x8000, 0, 0)))
        .build()
        .expect("stream bus builds");
    let mut probe = InlineProbe::new(model);
    // Warm-up covers both the bus pipeline and the probe's lazily created
    // (bounded) instruction-ledger rows.
    for _ in 0..500 {
        probe.observe(bus.step());
    }
    let before = allocations();
    for _ in 0..5_000 {
        probe.observe(bus.step());
    }
    assert_eq!(
        allocations() - before,
        0,
        "bus.step + probe.observe must not allocate on write traffic"
    );

    // --- 3. Paper testbench: allocations are bounded, not per-cycle. ------
    let mut bus = build_paper_bus(50_000, 2003);
    for _ in 0..1_000 {
        bus.step();
    }
    let before = allocations();
    for _ in 0..40_000 {
        bus.step();
    }
    let during = allocations() - before;
    // Read completions grow a per-master queue by doubling: O(log cycles)
    // allocations, vs ~3 *per cycle* (120k here) before the packed snapshot.
    assert!(
        during < 100,
        "paper bus allocated {during} times over 40k cycles — per-cycle garbage is back"
    );

    // --- 4. Structured event ring: the publish path never allocates. ------
    // The ring's slots are pre-allocated atomics; publishing a
    // TxnComplete/EnergyBooked is pure stores. Replays the pre-recorded
    // trace so bus-side allocations cannot leak into the count.
    use ahbpower::telemetry::{EventBus, EventsTap};
    let ring = EventBus::shared(4_096);
    let mut tap = EventsTap::new(std::sync::Arc::clone(&ring), cfg.n_masters, 1_000);
    tap.slice_start(0);
    for s in &trace[..2_000] {
        tap.observe_bus(s);
        tap.observe_energy(1e-9);
    }
    let before = allocations();
    for s in &trace[2_000..] {
        tap.observe_bus(s);
        tap.observe_energy(1e-9);
    }
    assert_eq!(
        allocations() - before,
        0,
        "enabled event publish path must not allocate"
    );
    assert!(ring.published() > 0, "the replay published events");

    // Disabled ring: the tap reduces to a cycle-counter bump plus one
    // cold atomic load — still zero allocations.
    ring.set_enabled(false);
    let before = allocations();
    for s in &trace {
        tap.observe_bus(s);
        tap.observe_energy(1e-9);
    }
    assert_eq!(
        allocations() - before,
        0,
        "disabled event path must not allocate"
    );

    // --- 5. Replay hot loop: zero allocations on a reused outcome. --------
    // The engine's LUTs are built once in `ReplayEngine::new`; the kernel
    // itself is table lookups and adds. With windowed tracing off and the
    // `ReplayOutcome` reused, a second replay of the same trace must not
    // touch the allocator at all.
    use ahbpower::{ReplayEngine, ReplayOutcome};
    use ahbpower_bench::{replay_variant_model, run_paper_experiment_recorded};
    let (run, activity) = run_paper_experiment_recorded(10_000, 2003);
    let engine = ReplayEngine::new(&replay_variant_model(&run.config, 0));
    let mut out = ReplayOutcome::new();
    engine.replay_into(&activity, &mut out); // warm-up (ledger rows etc.)
    let before = allocations();
    engine.replay_into(&activity, &mut out);
    assert_eq!(
        allocations() - before,
        0,
        "replay hot loop must not allocate per cycle"
    );
    assert_eq!(
        out.total_energy().to_bits(),
        run.session.total_energy().to_bits(),
        "the allocation-free replay still reproduces the live total"
    );

    // --- 6. Observatory ingest: zero allocations in steady state. ---------
    // All three retention levels are flat arrays sized at construction;
    // observe_cycle is pure adds and window close folds the sample into
    // pre-allocated slots — including when buckets are evicted (the ring
    // wraps, nothing is freed or grown). Capacity 16 with 1000 windows
    // wraps every level's raw ring many times over.
    use ahbpower::telemetry::{Observatory, ObservatoryConfig};
    use ahbpower::BlockEnergy;
    let mut obs = Observatory::new(
        ObservatoryConfig::default().with_capacity(16),
        cfg.n_masters,
        10,
    );
    let sample = BlockEnergy {
        dec: 1e-12,
        m2s: 2e-12,
        s2m: 3e-12,
        arb: 4e-12,
    };
    let mut txns = 0u64;
    // Warm-up past the first window closes on every level.
    for c in 0..2_000u64 {
        obs.observe_cycle((c % cfg.n_masters as u64) as usize, &sample);
        txns += u64::from(c % 3 == 0);
        obs.close_window_if_due(txns);
    }
    let before = allocations();
    for c in 0..10_000u64 {
        obs.observe_cycle((c % cfg.n_masters as u64) as usize, &sample);
        txns += u64::from(c % 3 == 0);
        obs.close_window_if_due(txns);
    }
    assert_eq!(
        allocations() - before,
        0,
        "observatory ingest must not allocate in steady state"
    );
    assert_eq!(obs.windows_ingested(), 1_200, "every window closed");
}
