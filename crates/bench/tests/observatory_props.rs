//! Property tests for the power observatory's multi-resolution
//! retention: whatever window stream is ingested, the 10x and 100x
//! cascades must agree with an independent fold of the raw samples
//! (sum/min/max/count/last, energy conserved to 1e-9 relative),
//! eviction must keep the levels' spans aligned (coarser levels never
//! cover less history than raw), and the query step must select the
//! documented level.

use ahbpower::telemetry::{
    AnomalyEvent, Observatory, ObservatoryConfig, WindowVerdict, OBSERVATORY_LEVEL_FACTORS,
};
use ahbpower::BlockEnergy;
use proptest::prelude::*;

const WINDOW_CYCLES: u64 = 4;
const N_MASTERS: usize = 2;
const REL_TOL: f64 = 1e-9;

/// One synthetic raw window: per-cycle block energies attributed to
/// alternating masters, plus the verdict fields the detector would hand
/// over when closing it.
#[derive(Debug, Clone)]
struct RawWindow {
    cycles: Vec<(usize, BlockEnergy)>,
    measured_j: f64,
    predicted_j: f64,
    flagged: bool,
    txn_delta: u64,
}

fn raw_window_strategy() -> impl Strategy<Value = RawWindow> {
    (
        proptest::collection::vec(
            (
                0..N_MASTERS,
                (1u32..1000, 1u32..1000, 1u32..1000, 1u32..1000),
            ),
            1..=WINDOW_CYCLES as usize,
        ),
        1u32..1_000_000,
        1u32..1_000_000,
        any::<bool>(),
        0u64..50,
    )
        .prop_map(
            |(cycles, measured, predicted, flagged, txn_delta)| RawWindow {
                cycles: cycles
                    .into_iter()
                    .map(|(m, (dec, m2s, s2m, arb))| {
                        (
                            m,
                            BlockEnergy {
                                dec: dec as f64 * 1e-12,
                                m2s: m2s as f64 * 1e-12,
                                s2m: s2m as f64 * 1e-12,
                                arb: arb as f64 * 1e-12,
                            },
                        )
                    })
                    .collect(),
                measured_j: measured as f64 * 1e-9,
                predicted_j: predicted as f64 * 1e-9,
                flagged,
                txn_delta,
            },
        )
}

/// Feeds the windows through the real ingest path (observe_cycle per
/// cycle, then a detector-style close_window) and returns the
/// observatory next to the per-series raw samples it should retain.
fn ingest(capacity: usize, windows: &[RawWindow]) -> (Observatory, Vec<Vec<f64>>) {
    let mut obs = Observatory::new(
        ObservatoryConfig::default().with_capacity(capacity),
        N_MASTERS,
        WINDOW_CYCLES,
    );
    let n_series = obs.series_names().len();
    let mut raw: Vec<Vec<f64>> = vec![Vec::new(); n_series];
    let mut txn_total = 0u64;
    let mut cycle = 0u64;
    for (w, win) in windows.iter().enumerate() {
        let start_cycle = cycle;
        let mut masters = [0.0f64; N_MASTERS];
        let mut blocks = BlockEnergy::default();
        for (m, e) in &win.cycles {
            obs.observe_cycle(*m, e);
            masters[*m] += e.total();
            blocks += *e;
            cycle += 1;
        }
        txn_total += win.txn_delta;
        let flagged = win.flagged.then_some(AnomalyEvent {
            window: w as u64,
            start_cycle,
            measured_j: win.measured_j,
            predicted_j: win.predicted_j,
            deviation_pct: 10.0,
            z_score: 4.0,
        });
        obs.close_window(
            &WindowVerdict {
                window: w as u64,
                start_cycle,
                measured_j: win.measured_j,
                predicted_j: win.predicted_j,
                flagged,
                absorbed: !win.flagged,
            },
            txn_total,
        );
        raw[0].push(win.measured_j);
        raw[1].push(win.predicted_j);
        raw[2].push(win.txn_delta as f64);
        raw[3].push(if win.flagged { 1.0 } else { 0.0 });
        for (m, e) in masters.iter().enumerate() {
            raw[4 + m].push(*e);
        }
        raw[4 + N_MASTERS].push(blocks.dec);
        raw[5 + N_MASTERS].push(blocks.m2s);
        raw[6 + N_MASTERS].push(blocks.s2m);
        raw[7 + N_MASTERS].push(blocks.arb);
    }
    (obs, raw)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With no eviction, every bucket of every coarser level must equal
    /// the fold of the raw windows it covers, for every series.
    #[test]
    fn cascade_matches_raw_fold(
        windows in proptest::collection::vec(raw_window_strategy(), 1..120)
    ) {
        let (obs, raw) = ingest(256, &windows);
        let names: Vec<String> = obs.series_names().to_vec();
        for (s, name) in names.iter().enumerate() {
            for &factor in &OBSERVATORY_LEVEL_FACTORS {
                let q = obs
                    .query(name, 0, u64::MAX, factor)
                    .expect("known series answers");
                prop_assert_eq!(q.factor, factor);
                for p in &q.points {
                    let lo = p.start_window as usize;
                    let hi = (lo + factor as usize).min(raw[s].len());
                    let cover = &raw[s][lo..hi];
                    prop_assert_eq!(p.windows as usize, cover.len());
                    let sum: f64 = cover.iter().sum();
                    let min = cover.iter().cloned().fold(f64::INFINITY, f64::min);
                    let max = cover.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(
                        close(p.sum, sum),
                        "series {} factor {} bucket {}: sum {} vs fold {}",
                        name, factor, p.bucket, p.sum, sum
                    );
                    prop_assert!(close(p.min, min), "min drifted");
                    prop_assert!(close(p.max, max), "max drifted");
                    prop_assert!(close(p.last, cover[cover.len() - 1]), "last drifted");
                }
                // Full-range totals conserve energy across levels.
                let total: f64 = q.points.iter().map(|p| p.sum).sum();
                let expect: f64 = raw[s].iter().sum();
                prop_assert!(
                    close(total, expect),
                    "series {} factor {}: total {} vs raw {}",
                    name, factor, total, expect
                );
                let count: u64 = q.points.iter().map(|p| u64::from(p.windows)).sum();
                prop_assert_eq!(count, raw[s].len() as u64);
            }
        }
    }

    /// Under eviction the levels stay aligned: raw keeps exactly the
    /// last `capacity` windows, and every coarser level still covers at
    /// least raw's span (its oldest bucket starts at or before raw's
    /// oldest window, its newest at or after raw's newest).
    #[test]
    fn eviction_keeps_levels_aligned(
        windows in proptest::collection::vec(raw_window_strategy(), 40..200),
        capacity in 16usize..32
    ) {
        let (obs, raw) = ingest(capacity, &windows);
        let n = raw[0].len();
        let q_raw = obs.query("energy", 0, u64::MAX, 1).expect("raw");
        prop_assert_eq!(q_raw.points.len(), n.min(capacity));
        let raw_first = q_raw.points.first().expect("nonempty").start_window;
        let raw_last = q_raw.points.last().expect("nonempty").start_window;
        prop_assert_eq!(raw_first as usize, n - n.min(capacity));
        prop_assert_eq!(raw_last as usize, n - 1);
        // Raw retention is exact: the survivors are the newest windows.
        for p in &q_raw.points {
            prop_assert!(close(p.sum, raw[0][p.start_window as usize]));
        }
        for &factor in &OBSERVATORY_LEVEL_FACTORS[1..] {
            let q = obs.query("energy", 0, u64::MAX, factor).expect("level");
            let first = q.points.first().expect("coarse level nonempty");
            let last = q.points.last().expect("coarse level nonempty");
            prop_assert!(
                first.start_window <= raw_first,
                "factor {}: oldest bucket {} starts after raw's oldest {}",
                factor, first.start_window, raw_first
            );
            prop_assert!(
                last.start_window + factor > raw_last,
                "factor {}: newest bucket misses raw's newest window",
                factor
            );
            // The freshest sample agrees everywhere.
            prop_assert!(close(last.last, raw[0][n - 1]), "last sample drifted");
        }
    }

    /// The step parameter selects the coarsest level whose factor does
    /// not exceed it, exactly as documented.
    #[test]
    fn query_step_selects_documented_level(step in 0u64..10_000) {
        let want = if step >= 100 { 2 } else if step >= 10 { 1 } else { 0 };
        prop_assert_eq!(Observatory::select_level(step), want);
        let windows: Vec<RawWindow> = (0..25)
            .map(|i| RawWindow {
                cycles: vec![(i % N_MASTERS, BlockEnergy {
                    dec: 1e-12, m2s: 1e-12, s2m: 1e-12, arb: 1e-12,
                })],
                measured_j: 1e-9 * (i as f64 + 1.0),
                predicted_j: 1e-9,
                flagged: false,
                txn_delta: 1,
            })
            .collect();
        let (obs, _) = ingest(64, &windows);
        let q = obs.query("energy", 0, u64::MAX, step).expect("energy");
        prop_assert_eq!(q.level, want);
        prop_assert_eq!(q.factor, OBSERVATORY_LEVEL_FACTORS[want]);
        // Buckets come back in order.
        for pair in q.points.windows(2) {
            prop_assert!(pair[0].bucket < pair[1].bucket);
        }
    }
}
