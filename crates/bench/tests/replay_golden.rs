//! Golden fidelity contract of the record/replay pipeline (ISSUE 7):
//! a recorded run must replay to the live ledger totals bit for bit,
//! variant replays must match fresh cycle-accurate simulations, and the
//! on-disk trace format must round-trip losslessly.

use ahbpower::{ActivityTrace, ReplayEngine, ReplayOutcome};
use ahbpower_bench::{
    replay_sweep, replay_variant_model, replay_variant_spec, resimulate_variant,
    run_paper_experiment_recorded,
};

const CYCLES: u64 = 20_000;
const SEED: u64 = 2003;

#[test]
fn replay_reproduces_live_run_within_1e9_and_bit_for_bit() {
    let (run, trace) = run_paper_experiment_recorded(CYCLES, SEED);
    assert_eq!(trace.cycles(), CYCLES, "every cycle is recorded");
    let live = run.session.total_energy();
    assert_eq!(
        trace.live_total_j.to_bits(),
        live.to_bits(),
        "the trace is stamped with the live ledger total"
    );

    let mut out = ReplayOutcome::with_windows();
    ReplayEngine::new(&replay_variant_model(&run.config, 0)).replay_into(&trace, &mut out);
    let replayed = out.total_energy();
    assert!(
        (replayed - live).abs() <= 1e-9,
        "golden tolerance: replay {replayed} vs live {live}"
    );
    assert_eq!(
        replayed.to_bits(),
        live.to_bits(),
        "identity replay is bit-exact, not merely within tolerance"
    );

    // The per-instruction ledger and per-block split survive the replay,
    // not just the grand total.
    let live_rows = run.session.ledger().rows();
    let replay_rows = out.ledger().rows();
    assert_eq!(live_rows.len(), replay_rows.len(), "instruction mix");
    for (l, r) in live_rows.iter().zip(&replay_rows) {
        let name = l.instruction.name();
        assert_eq!(name, r.instruction.name());
        assert_eq!(l.count, r.count, "{name} count");
        assert_eq!(l.total.to_bits(), r.total.to_bits(), "{name} energy");
    }
    let live_blocks = run.session.blocks().totals();
    let replay_blocks = out.blocks().totals();
    for (name, l, r) in [
        ("dec", live_blocks.dec, replay_blocks.dec),
        ("m2s", live_blocks.m2s, replay_blocks.m2s),
        ("s2m", live_blocks.s2m, replay_blocks.s2m),
        ("arb", live_blocks.arb, replay_blocks.arb),
    ] {
        assert_eq!(l.to_bits(), r.to_bits(), "per-block split diverged: {name}");
    }
}

#[test]
fn variant_replays_match_fresh_cycle_accurate_runs() {
    let (run, trace) = run_paper_experiment_recorded(CYCLES, SEED);
    // One variant per sub-block plus a second-factor pick: the grid's
    // first five non-identity points cover all four blocks.
    for k in 1..=5usize {
        let (block, factor) = replay_variant_spec(k).expect("non-identity variant");
        let replayed = replay_sweep(&trace, &[replay_variant_model(&run.config, k)], 1);
        let fresh = resimulate_variant(CYCLES, SEED, k);
        assert_eq!(
            replayed[0].total_energy().to_bits(),
            fresh.total_energy().to_bits(),
            "variant {k} ({} x{factor}) replay != fresh simulation",
            block.name()
        );
    }
}

#[test]
fn trace_bytes_round_trip_losslessly() {
    let (run, trace) = run_paper_experiment_recorded(CYCLES, SEED);
    let bytes = trace.to_bytes();
    assert!(
        (bytes.len() as f64) / (CYCLES as f64) < 8.0,
        "compact encoding: {} bytes for {CYCLES} cycles",
        bytes.len()
    );
    let decoded = ActivityTrace::from_bytes(&bytes).expect("round trip decodes");
    assert_eq!(decoded.cycles(), trace.cycles());
    assert_eq!(decoded.n_masters, trace.n_masters);
    assert_eq!(decoded.n_slaves, trace.n_slaves);
    assert_eq!(decoded.window_cycles, trace.window_cycles);
    assert_eq!(decoded.f_clk_hz.to_bits(), trace.f_clk_hz.to_bits());
    assert_eq!(decoded.live_total_j.to_bits(), trace.live_total_j.to_bits());

    // The decoded trace replays to the same golden total as the original.
    let replayed = replay_sweep(&decoded, &[replay_variant_model(&run.config, 0)], 1);
    assert_eq!(
        replayed[0].total_energy().to_bits(),
        run.session.total_energy().to_bits(),
        "decoded trace lost information"
    );
}
