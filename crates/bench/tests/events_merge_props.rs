//! Property tests for the merged `/events` cursor space: under any
//! interleaving of per-shard publishes (including ring wraparound) and
//! any sequence of bounded reads, the dot-joined multi-shard cursor
//! must round-trip through its wire encoding, every per-shard
//! component must advance monotonically, each batch must account for
//! exactly the events it skipped (`next == since + dropped + len`),
//! and a reader that keeps polling from the returned cursor must end
//! with `received + dropped == published` on every shard — loss is
//! counted, never silent.

use std::sync::Arc;

use ahbpower::telemetry::{Event, EventBus, EventKind};
use ahbpower_bench::{format_multi_cursor, merged_read_since, parse_multi_cursor};
use proptest::prelude::*;

/// One step of the interleaved schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Publish `count` events on shard `shard % n`.
    Publish { shard: usize, count: usize },
    /// Read up to `max` events per shard from the running cursor.
    Read { max: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..4, 1usize..40).prop_map(|(shard, count)| Step::Publish { shard, count }),
        (1usize..32).prop_map(|max| Step::Read { max }),
    ]
}

fn test_event(i: usize) -> Event {
    Event {
        seq: 0, // the bus assigns it
        kind: EventKind::ALL[i % EventKind::ALL.len()],
        slice: i as u64,
        txn: 0,
        window: i as u64 / 4,
        cycle: i as u64 * 100,
        tag: (i % 7) as u32,
        a: i as f64 * 0.5,
        b: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire encoding is lossless for any cursor vector, and short
    /// cursors zero-pad while overlong or garbage cursors are rejected.
    #[test]
    fn multi_cursor_roundtrips(cursors in proptest::collection::vec(any::<u64>(), 1..6)) {
        let wire = format_multi_cursor(&cursors);
        prop_assert_eq!(wire.split('.').count(), cursors.len());
        prop_assert_eq!(parse_multi_cursor(&wire, cursors.len()), Some(cursors.clone()));
        // A shorter prefix parses into a zero-padded vector...
        let mut padded = cursors.clone();
        padded.push(0);
        prop_assert_eq!(parse_multi_cursor(&wire, cursors.len() + 1), Some(padded));
        // ...but a cursor with more components than shards is refused.
        prop_assert_eq!(parse_multi_cursor(&format!("{wire}.1"), cursors.len()), None);
        prop_assert_eq!(parse_multi_cursor("1.x", 2), None);
    }

    /// Any interleaving of publishes and bounded reads keeps every
    /// shard's cursor monotone and loss-accounted, and a final drain
    /// reconciles exactly: received + dropped == published per shard.
    #[test]
    fn merged_cursor_space_is_monotone_and_loss_accounted(
        shards in 1usize..4,
        capacity in 2usize..5, // ring of 2^capacity slots: tiny, wraps often
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let buses: Vec<Arc<EventBus>> =
            (0..shards).map(|_| EventBus::shared(1 << capacity)).collect();
        let mut cursor = vec![0u64; shards];
        let mut received = vec![0u64; shards];
        let mut dropped = vec![0u64; shards];
        let mut published = 0usize;
        let read = |cursor: &mut Vec<u64>,
                        received: &mut Vec<u64>,
                        dropped: &mut Vec<u64>,
                        max: usize|
         -> Result<(), TestCaseError> {
            let batches = merged_read_since(&buses, cursor, max);
            prop_assert_eq!(batches.len(), shards);
            for (k, b) in batches.iter().enumerate() {
                // Monotone: the cursor never moves backwards.
                prop_assert!(b.next >= cursor[k], "shard {} cursor regressed", k);
                // Loss-accounted: everything between since and next is
                // either delivered or counted as dropped.
                prop_assert_eq!(
                    b.next,
                    cursor[k] + b.dropped + b.events.len() as u64,
                    "shard {} batch does not account for its span",
                    k
                );
                prop_assert!(b.events.len() <= max);
                // Delivered events carry consecutive sequence numbers
                // ending at the new cursor.
                for (j, e) in b.events.iter().enumerate() {
                    prop_assert_eq!(
                        e.seq,
                        b.next - b.events.len() as u64 + j as u64,
                        "shard {} event out of order",
                        k
                    );
                }
                received[k] += b.events.len() as u64;
                dropped[k] += b.dropped;
                cursor[k] = b.next;
            }
            // The merged wire cursor round-trips.
            let wire = format_multi_cursor(cursor);
            prop_assert_eq!(parse_multi_cursor(&wire, shards), Some(cursor.clone()));
            Ok(())
        };
        for step in &steps {
            match *step {
                Step::Publish { shard, count } => {
                    let bus = &buses[shard % shards];
                    for _ in 0..count {
                        bus.publish(test_event(published));
                        published += 1;
                    }
                }
                Step::Read { max } => {
                    read(&mut cursor, &mut received, &mut dropped, max)?;
                }
            }
        }
        // Drain to quiescence: with no concurrent publisher this must
        // terminate, and afterwards every shard reconciles exactly.
        loop {
            let before = cursor.clone();
            read(&mut cursor, &mut received, &mut dropped, 4_096)?;
            if cursor == before {
                break;
            }
        }
        for (k, bus) in buses.iter().enumerate() {
            prop_assert_eq!(
                received[k] + dropped[k],
                bus.published(),
                "shard {} lost events silently",
                k
            );
            prop_assert_eq!(cursor[k], bus.published());
            // No shard can have dropped more than what fell out of its
            // ring window.
            let window = bus.capacity() as u64;
            prop_assert!(dropped[k] <= bus.published().saturating_sub(window.min(bus.published())) + window, "shard {k} dropped impossible count");
        }
    }
}
