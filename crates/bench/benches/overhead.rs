//! E6 — the paper's Section 6 claim: enabling power analysis roughly
//! doubles simulation time. Compares functional-only simulation of the
//! paper testbench against the same run instrumented with the power FSM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ahbpower::telemetry::TelemetryConfig;
use ahbpower::{AnalysisConfig, PowerSession};
use ahbpower_bench::build_paper_bus;

const CYCLES: u64 = 20_000;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead");
    g.sample_size(20);
    g.bench_function("functional_20k_cycles", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, 2003);
            bus.run(CYCLES);
            black_box(bus.stats().transfers_ok)
        });
    });
    g.bench_function("power_instrumented_20k_cycles", |b| {
        let cfg = AnalysisConfig::paper_testbench();
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, 2003);
            let mut session = PowerSession::new(&cfg);
            session.run(&mut bus, CYCLES);
            black_box(session.total_energy())
        });
    });
    // The acceptance gate for the telemetry subsystem: a session built
    // with telemetry disabled (the default config) must track the plain
    // instrumented run above, and the enabled run shows the full cost.
    g.bench_function("telemetry_disabled_20k_cycles", |b| {
        let cfg = AnalysisConfig::paper_testbench();
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, 2003);
            let mut session = PowerSession::with_telemetry(&cfg, TelemetryConfig::default());
            session.run(&mut bus, CYCLES);
            black_box(session.total_energy())
        });
    });
    g.bench_function("telemetry_enabled_20k_cycles", |b| {
        let cfg = AnalysisConfig::paper_testbench();
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, 2003);
            let mut session = PowerSession::with_telemetry(&cfg, TelemetryConfig::enabled("bench"));
            session.run(&mut bus, CYCLES);
            session.finish_telemetry();
            black_box(session.total_energy())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
