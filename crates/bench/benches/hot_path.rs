//! Per-cycle cost of the simulate→probe hot path.
//!
//! The packed-bitmask [`ahbpower_ahb::BusSnapshot`] made `bus.step()` plus
//! every probe's `observe` allocation-free; this bench measures what one
//! cycle of each pipeline stage costs so regressions show up as ns/cycle,
//! not just as aggregate wall time.
//!
//! Groups:
//! - `step`: bare functional simulation (the floor everything else adds to);
//! - `step+inline` / `step+fsm` / `step+global`: simulation with each probe
//!   style observing every cycle, i.e. the paper's instrumented loop;
//! - `sweep_point`: one full seed×style sweep point as the parallel engine
//!   runs it, including bus construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ahbpower::{AhbPowerModel, AnalysisConfig, FsmProbe, GlobalProbe, InlineProbe, PowerProbe};
use ahbpower_bench::{build_paper_bus, run_sweep_point, ProbeStyle, SweepPoint};

const CYCLES: u64 = 10_000;
const SEED: u64 = 2003;

fn bench_hot_path(c: &mut Criterion) {
    let cfg = AnalysisConfig::paper_testbench();
    let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    // Calibrate the FSM style once, outside the timed region.
    let mut calib = InlineProbe::new(model.clone());
    let mut calib_bus = build_paper_bus(CYCLES, SEED ^ 0xCA11B);
    for _ in 0..CYCLES {
        calib.observe(calib_bus.step());
    }
    let table = calib.fsm().ledger().clone();

    let mut g = c.benchmark_group("hot_path_10k_cycles");
    g.bench_function("step", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, SEED);
            for _ in 0..CYCLES {
                black_box(bus.step());
            }
            black_box(bus.stats().transfers_ok)
        });
    });
    g.bench_function("step+inline", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, SEED);
            let mut p = InlineProbe::new(model.clone());
            for _ in 0..CYCLES {
                p.observe(bus.step());
            }
            black_box(p.total_energy())
        });
    });
    g.bench_function("step+fsm", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, SEED);
            let mut p = FsmProbe::from_calibration(&table);
            for _ in 0..CYCLES {
                p.observe(bus.step());
            }
            black_box(p.total_energy())
        });
    });
    g.bench_function("step+global", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(CYCLES, SEED);
            let mut p = GlobalProbe::new(model.clone());
            for _ in 0..CYCLES {
                p.observe(bus.step());
            }
            black_box(p.total_energy())
        });
    });
    g.bench_function("sweep_point", |b| {
        let point = SweepPoint {
            cycles: CYCLES,
            seed: SEED,
            style: ProbeStyle::Inline,
        };
        b.iter(|| black_box(run_sweep_point(&point)));
    });
    g.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
