//! Microbenchmarks of the three substrates: the discrete-event kernel, the
//! gate-level simulator and the raw AHB fabric. These bound the cost model
//! behind every experiment (how many cycles/second each layer sustains).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ahbpower_bench::build_paper_bus;
use ahbpower_gate::{one_hot_decoder, LogicSim};
use ahbpower_sim::{Kernel, SimTime};

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel_clocked_counter_10k_cycles", |b| {
        b.iter(|| {
            let mut k = Kernel::new();
            let clk = k.clock("clk", SimTime::from_ns(10));
            let q = k.signal("q", 0u32);
            k.process("count", &[clk.id()], move |ctx| {
                if ctx.posedge(clk) {
                    let v = ctx.read(q);
                    ctx.write(q, v + 1);
                }
            });
            k.run_until(SimTime::from_us(100)).expect("no delta loop");
            black_box(k.read(q))
        });
    });
}

fn bench_gatesim(c: &mut Criterion) {
    let dec = one_hot_decoder(8);
    c.bench_function("gatesim_decoder8_1k_vectors", |b| {
        b.iter(|| {
            let mut sim = LogicSim::new(&dec.netlist);
            for i in 0..1_000u64 {
                sim.set_bus(&dec.addr, i % 8);
                sim.settle();
            }
            black_box(sim.total_toggles())
        });
    });
}

fn bench_ahb(c: &mut Criterion) {
    c.bench_function("ahb_paper_testbench_10k_cycles", |b| {
        b.iter(|| {
            let mut bus = build_paper_bus(10_000, 7);
            bus.run(10_000);
            black_box(bus.stats().transfers_ok)
        });
    });
}

criterion_group!(benches, bench_kernel, bench_gatesim, bench_ahb);
criterion_main!(benches);
