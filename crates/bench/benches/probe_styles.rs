//! E8 — per-cycle cost of the three power-model styles (paper Fig. 1).
//!
//! A snapshot trace is pre-recorded so the benchmark isolates the probes'
//! own cost from bus simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ahbpower::{AhbPowerModel, AnalysisConfig, FsmProbe, GlobalProbe, InlineProbe, PowerProbe};
use ahbpower_ahb::BusSnapshot;
use ahbpower_bench::build_paper_bus;

fn record_trace(cycles: u64) -> Vec<BusSnapshot> {
    let mut bus = build_paper_bus(cycles, 2003);
    (0..cycles).map(|_| *bus.step()).collect()
}

fn bench_probes(c: &mut Criterion) {
    let cfg = AnalysisConfig::paper_testbench();
    let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    let trace = record_trace(10_000);
    // Calibrate the FSM style once.
    let mut calib = InlineProbe::new(model.clone());
    for s in &trace {
        calib.observe(s);
    }
    let table_source = calib.fsm().ledger().clone();

    let mut g = c.benchmark_group("probe_styles_10k_cycles");
    g.bench_function("inline", |b| {
        b.iter(|| {
            let mut p = InlineProbe::new(model.clone());
            for s in &trace {
                p.observe(s);
            }
            black_box(p.total_energy())
        });
    });
    g.bench_function("fsm", |b| {
        b.iter(|| {
            let mut p = FsmProbe::from_calibration(&table_source);
            for s in &trace {
                p.observe(s);
            }
            black_box(p.total_energy())
        });
    });
    g.bench_function("global", |b| {
        b.iter(|| {
            let mut p = GlobalProbe::new(model.clone());
            for s in &trace {
                p.observe(s);
            }
            black_box(p.total_energy())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_probes);
criterion_main!(benches);
