//! # ahbpower-gate — gate-level reference substrate
//!
//! The DATE'03 paper validated its analytic energy macromodels against
//! gate-level descriptions simulated with Berkeley's SIS. This crate plays
//! that role from scratch:
//!
//! - [`Netlist`]: primitive-gate netlists (NOT/AND/OR/… + D flip-flops) with
//!   structural checking and topological ordering;
//! - [`LogicSim`]: two-valued simulation counting per-net switching activity;
//! - [`switching_energy`]: `C·V²/4`-per-toggle energy accounting
//!   ([`TechParams`] carries `V_DD`, `C_PD`, `C_O`);
//! - [`one_hot_decoder`] / [`mux_tree`] / [`priority_arbiter`]: generators
//!   for exactly the structures the paper synthesized (one-hot decoder from
//!   NOT+AND gates, AND-OR-tree multiplexers, a priority arbiter);
//! - [`sweep_decoder`] & friends: Hamming-distance characterization sweeps
//!   whose output the `ahbpower` crate fits macromodels to.
//!
//! ## Example: measure a decoder transition
//!
//! ```
//! use ahbpower_gate::{one_hot_decoder, switching_energy, LogicSim, TechParams};
//!
//! let dec = one_hot_decoder(4);
//! let mut sim = LogicSim::new(&dec.netlist);
//! sim.set_bus(&dec.addr, 0);
//! sim.settle();
//! sim.reset_counters();
//! sim.set_bus(&dec.addr, 3); // HD_IN = 2
//! sim.settle();
//! let energy = switching_energy(&sim, &TechParams::default());
//! assert!(energy > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blif;
mod characterize;
mod energy;
mod equiv;
mod netlist;
mod sim;
mod synth;

pub use blif::{from_blif, to_blif, ParseBlifError};
pub use characterize::{
    measure_arbiter, sweep_decoder, sweep_mux_data, sweep_mux_select, HdPoint, SplitMix64,
};
pub use energy::{energy_breakdown, switching_energy, EnergyBreakdown, TechParams};
pub use equiv::{check_equivalence, EquivalenceError, MAX_EQUIV_INPUTS};
pub use netlist::{BuildNetlistError, Dff, Gate, GateKind, NetId, Netlist, NetlistStats};
pub use sim::LogicSim;
pub use synth::{addr_bits, mux_tree, one_hot_decoder, priority_arbiter, Arbiter, Decoder, Mux};
