//! Two-valued logic simulation with per-net switching-activity counters.
//!
//! This is the measurement half of the SIS-replacement: apply input vectors,
//! settle the combinational logic, and count how many nets toggled — the raw
//! data behind every energy macromodel in the `ahbpower` crate.

use crate::netlist::{NetId, Netlist};

/// A logic simulator bound to a finalized [`Netlist`].
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{GateKind, LogicSim, Netlist};
///
/// let mut n = Netlist::new("inv");
/// let a = n.input("a");
/// let y = n.not(a, "y");
/// n.mark_output(y);
/// let n = n.finalize()?;
///
/// let mut sim = LogicSim::new(&n);
/// sim.set_input(a, true);
/// sim.settle();
/// assert!(!sim.value(y));
/// assert_eq!(sim.toggles(y), 1); // y fell from its settled initial value (true)
/// # Ok::<(), ahbpower_gate::BuildNetlistError>(())
/// ```
#[derive(Debug)]
pub struct LogicSim<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    toggles: Vec<u64>,
    /// Vectors applied since the counters were last reset.
    vectors: u64,
}

impl<'a> LogicSim<'a> {
    /// Creates a simulator with all nets initially low, then settles the
    /// combinational logic so internal nets are consistent.
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = LogicSim {
            netlist,
            values: vec![false; netlist.net_count()],
            toggles: vec![0; netlist.net_count()],
            vectors: 0,
        };
        // Initial settle establishes consistency without counting activity.
        sim.propagate();
        sim.reset_counters();
        sim
    }

    /// Sets a primary-input value (takes effect at the next [`settle`]).
    ///
    /// [`settle`]: LogicSim::settle
    pub fn set_input(&mut self, net: NetId, value: bool) {
        if self.values[net.index()] != value {
            self.values[net.index()] = value;
            self.toggles[net.index()] += 1;
        }
    }

    /// Sets a bus of primary inputs from the low bits of `value` (bit 0 ->
    /// `nets[0]`).
    pub fn set_bus(&mut self, nets: &[NetId], value: u64) {
        for (i, net) in nets.iter().enumerate() {
            self.set_input(*net, (value >> i) & 1 == 1);
        }
    }

    /// Propagates input changes through the combinational logic, counting
    /// every net that changes value.
    pub fn settle(&mut self) {
        self.vectors += 1;
        self.eval_counting();
    }

    /// Advances one clock cycle: settles the combinational logic with the
    /// current inputs, clocks every flip-flop (q <= d, all sampled before
    /// any q updates), and settles again. Counts activity throughout.
    pub fn step(&mut self) {
        self.vectors += 1;
        // Let pending input changes reach the d pins before the edge.
        self.eval_counting();
        let sampled: Vec<(NetId, bool)> = self
            .netlist
            .dffs()
            .iter()
            .map(|ff| (ff.q, self.values[ff.d.index()]))
            .collect();
        for (q, v) in sampled {
            if self.values[q.index()] != v {
                self.values[q.index()] = v;
                self.toggles[q.index()] += 1;
            }
        }
        self.eval_counting();
    }

    fn eval_counting(&mut self) {
        for &gi in self.netlist.topo_order() {
            let gate = &self.netlist.gates()[gi];
            let inputs: Vec<bool> = gate.inputs.iter().map(|n| self.values[n.index()]).collect();
            let new = gate.kind.eval(&inputs);
            let out = gate.output.index();
            if self.values[out] != new {
                self.values[out] = new;
                self.toggles[out] += 1;
            }
        }
    }

    /// Settles without counting (used for initialization).
    fn propagate(&mut self) {
        for &gi in self.netlist.topo_order() {
            let gate = &self.netlist.gates()[gi];
            let inputs: Vec<bool> = gate.inputs.iter().map(|n| self.values[n.index()]).collect();
            self.values[gate.output.index()] = gate.kind.eval(&inputs);
        }
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads a bus as an integer (`nets[0]` is bit 0).
    pub fn bus_value(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .fold(0u64, |acc, (i, n)| acc | (u64::from(self.value(*n)) << i))
    }

    /// Toggle count of one net since the last counter reset.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Per-net toggle counters (indexed by net id).
    pub fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    /// Sum of all toggle counters.
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Number of vectors applied since the last reset.
    pub fn vectors_applied(&self) -> u64 {
        self.vectors
    }

    /// Zeroes the activity counters (values are kept).
    pub fn reset_counters(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.vectors = 0;
    }

    /// The netlist this simulator runs.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.gate(GateKind::Xor, &[a, b], "y");
        n.mark_output(y);
        n.finalize().unwrap()
    }

    #[test]
    fn combinational_evaluation() {
        let n = xor_netlist();
        let (a, b) = (n.inputs()[0], n.inputs()[1]);
        let y = n.outputs()[0];
        let mut sim = LogicSim::new(&n);
        for (va, vb, vy) in [
            (false, false, false),
            (true, false, true),
            (true, true, false),
            (false, true, true),
        ] {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.settle();
            assert_eq!(sim.value(y), vy, "xor({va},{vb})");
        }
    }

    #[test]
    fn toggle_counting() {
        let n = xor_netlist();
        let (a, b) = (n.inputs()[0], n.inputs()[1]);
        let y = n.outputs()[0];
        let mut sim = LogicSim::new(&n);
        sim.set_input(a, true); // a: 1 toggle, y will toggle
        sim.settle();
        sim.set_input(b, true); // b: 1 toggle, y toggles back
        sim.settle();
        assert_eq!(sim.toggles(a), 1);
        assert_eq!(sim.toggles(b), 1);
        assert_eq!(sim.toggles(y), 2);
        assert_eq!(sim.total_toggles(), 4);
        assert_eq!(sim.vectors_applied(), 2);
        sim.reset_counters();
        assert_eq!(sim.total_toggles(), 0);
        assert_eq!(sim.vectors_applied(), 0);
    }

    #[test]
    fn same_vector_causes_no_activity() {
        let n = xor_netlist();
        let (a, b) = (n.inputs()[0], n.inputs()[1]);
        let mut sim = LogicSim::new(&n);
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.settle();
        sim.reset_counters();
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.settle();
        assert_eq!(sim.total_toggles(), 0);
    }

    #[test]
    fn bus_helpers_round_trip() {
        let mut n = Netlist::new("bus");
        let addr = n.input_bus("addr", 4);
        let y = n.gate(GateKind::Or, &addr, "y");
        n.mark_output(y);
        let n = n.finalize().unwrap();
        let addr: Vec<NetId> = n.inputs().to_vec();
        let mut sim = LogicSim::new(&n);
        sim.set_bus(&addr, 0b1010);
        sim.settle();
        assert_eq!(sim.bus_value(&addr), 0b1010);
        assert!(sim.value(n.outputs()[0]));
    }

    #[test]
    fn dff_step_registers_data() {
        let mut n = Netlist::new("reg");
        let d = n.input("d");
        let q = n.dff(d, "q");
        let y = n.not(q, "y");
        n.mark_output(y);
        let n = n.finalize().unwrap();
        let d = n.inputs()[0];
        let q = n.dffs()[0].q;
        let mut sim = LogicSim::new(&n);
        sim.set_input(d, true);
        sim.settle();
        assert!(!sim.value(q), "q updates only on step()");
        sim.step();
        assert!(sim.value(q));
        assert!(!sim.value(n.outputs()[0]));
        // Shift-register timing: change d, q keeps old value until next step.
        sim.set_input(d, false);
        sim.settle();
        assert!(sim.value(q));
        sim.step();
        assert!(!sim.value(q));
    }

    #[test]
    fn dffs_sample_before_update() {
        // Two DFFs in a chain must shift, not fall through, in one step.
        let mut n = Netlist::new("shift2");
        let d = n.input("d");
        let q0 = n.dff(d, "q0");
        let q1 = n.dff(q0, "q1");
        n.mark_output(q1);
        let n = n.finalize().unwrap();
        let d = n.inputs()[0];
        let (q0, q1) = (n.dffs()[0].q, n.dffs()[1].q);
        let mut sim = LogicSim::new(&n);
        sim.set_input(d, true);
        sim.step();
        assert!(sim.value(q0));
        assert!(!sim.value(q1), "value must take two steps to reach q1");
        sim.step();
        assert!(sim.value(q1));
    }

    #[test]
    fn initialization_settles_without_counting() {
        let mut n = Netlist::new("invchain");
        let a = n.input("a");
        let b = n.not(a, "b"); // b is true when a=false
        let c = n.not(b, "c");
        n.mark_output(c);
        let n = n.finalize().unwrap();
        let sim = LogicSim::new(&n);
        // b settled to true during init but no toggles were counted.
        assert!(sim.value(n.gates()[0].output));
        assert_eq!(sim.total_toggles(), 0);
    }
}
