//! Hamming-distance sweeps over synthesized blocks.
//!
//! This module is the measurement side of the paper's Section 5.1: it drives
//! the gate-level decoder/mux/arbiter with input-vector pairs of controlled
//! Hamming distance and records the average switching energy per transition.
//! The `ahbpower` crate fits and validates its analytic macromodels against
//! these records (the role SIS played for the authors).

use crate::energy::{switching_energy, TechParams};
use crate::sim::LogicSim;
use crate::synth::{mux_tree, one_hot_decoder, priority_arbiter};

/// One point of a characterization sweep: the average energy of a transition
/// with the given input/select Hamming distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdPoint {
    /// Hamming distance between consecutive data/address vectors.
    pub hd_in: u32,
    /// Hamming distance between consecutive select vectors (0 for blocks
    /// without a select input).
    pub hd_sel: u32,
    /// Mean switching energy per transition, joules.
    pub energy: f64,
    /// Number of transitions averaged.
    pub samples: u64,
}

/// A minimal deterministic PRNG (SplitMix64) so characterization sweeps are
/// reproducible without external dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free for our purposes; bias is negligible for small bounds.
        self.next_u64() % bound
    }

    /// A random mask with exactly `k` of the low `width` bits set.
    pub fn mask_with_weight(&mut self, width: u32, k: u32) -> u64 {
        assert!(k <= width && width <= 64);
        let mut mask = 0u64;
        let mut remaining = k;
        while remaining > 0 {
            let bit = self.below(u64::from(width));
            if mask & (1 << bit) == 0 {
                mask |= 1 << bit;
                remaining -= 1;
            }
        }
        mask
    }
}

/// Sweeps a one-hot decoder: for every ordered pair of addresses, measures
/// the transition energy and groups the mean by input Hamming distance.
///
/// The sweep is exhaustive (the address space is tiny), hence deterministic.
///
/// # Panics
///
/// Panics if `n_outputs < 2`.
pub fn sweep_decoder(n_outputs: usize, tech: &TechParams) -> Vec<HdPoint> {
    let dec = one_hot_decoder(n_outputs);
    let n_in = dec.addr.len() as u32;
    let mut acc: Vec<(f64, u64)> = vec![(0.0, 0); n_in as usize + 1];
    let mut sim = LogicSim::new(&dec.netlist);
    for from in 0..n_outputs as u64 {
        for to in 0..n_outputs as u64 {
            if from == to {
                continue;
            }
            sim.set_bus(&dec.addr, from);
            sim.settle();
            sim.reset_counters();
            sim.set_bus(&dec.addr, to);
            sim.settle();
            let e = switching_energy(&sim, tech);
            let hd = (from ^ to).count_ones() as usize;
            acc[hd].0 += e;
            acc[hd].1 += 1;
        }
    }
    collect_points(&acc, |hd| HdPoint {
        hd_in: hd,
        hd_sel: 0,
        energy: 0.0,
        samples: 0,
    })
}

/// Sweeps a multiplexer's **data path**: select held constant, the selected
/// channel's data toggled with controlled Hamming distance.
///
/// # Panics
///
/// Panics if `width == 0 || width > 64` or `n_inputs < 2`.
pub fn sweep_mux_data(
    width: usize,
    n_inputs: usize,
    samples_per_hd: u64,
    tech: &TechParams,
    seed: u64,
) -> Vec<HdPoint> {
    assert!(width <= 64, "sweep uses u64 vectors");
    let mux = mux_tree(width, n_inputs);
    let mut rng = SplitMix64::new(seed);
    let mut acc: Vec<(f64, u64)> = vec![(0.0, 0); width + 1];
    let mut sim = LogicSim::new(&mux.netlist);
    let lane_mask = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    for hd in 0..=width as u32 {
        for _ in 0..samples_per_hd {
            let ch = rng.below(n_inputs as u64) as usize;
            let base = rng.next_u64() & lane_mask;
            for (j, bits) in mux.data.iter().enumerate() {
                sim.set_bus(
                    bits,
                    if j == ch {
                        base
                    } else {
                        rng.next_u64() & lane_mask
                    },
                );
            }
            sim.set_bus(&mux.sel, ch as u64);
            sim.settle();
            sim.reset_counters();
            let flip = rng.mask_with_weight(width as u32, hd);
            sim.set_bus(&mux.data[ch], base ^ flip);
            sim.settle();
            let e = switching_energy(&sim, tech);
            acc[hd as usize].0 += e;
            acc[hd as usize].1 += 1;
        }
    }
    collect_points(&acc, |hd| HdPoint {
        hd_in: hd,
        hd_sel: 0,
        energy: 0.0,
        samples: 0,
    })
}

/// Sweeps a multiplexer's **select path**: data held constant on all
/// channels, the select code switched between random channel pairs; points
/// are grouped by select Hamming distance.
///
/// # Panics
///
/// Panics if `width == 0 || width > 64` or `n_inputs < 2`.
pub fn sweep_mux_select(
    width: usize,
    n_inputs: usize,
    samples_per_pair: u64,
    tech: &TechParams,
    seed: u64,
) -> Vec<HdPoint> {
    assert!(width <= 64, "sweep uses u64 vectors");
    let mux = mux_tree(width, n_inputs);
    let sel_bits = mux.sel.len();
    let mut rng = SplitMix64::new(seed);
    let mut acc: Vec<(f64, u64)> = vec![(0.0, 0); sel_bits + 1];
    let mut sim = LogicSim::new(&mux.netlist);
    let lane_mask = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    for from in 0..n_inputs as u64 {
        for to in 0..n_inputs as u64 {
            if from == to {
                continue;
            }
            for _ in 0..samples_per_pair {
                for bits in &mux.data {
                    sim.set_bus(bits, rng.next_u64() & lane_mask);
                }
                sim.set_bus(&mux.sel, from);
                sim.settle();
                sim.reset_counters();
                sim.set_bus(&mux.sel, to);
                sim.settle();
                let e = switching_energy(&sim, tech);
                let hd = (from ^ to).count_ones() as usize;
                acc[hd].0 += e;
                acc[hd].1 += 1;
            }
        }
    }
    collect_points(&acc, |hd| HdPoint {
        hd_in: 0,
        hd_sel: hd,
        energy: 0.0,
        samples: 0,
    })
}

/// Measures the average per-cycle energy of the priority arbiter under a
/// random request stream with the given request probability (per master, per
/// cycle), in parts per 256.
///
/// # Panics
///
/// Panics if `n_masters < 2`.
pub fn measure_arbiter(
    n_masters: usize,
    cycles: u64,
    req_prob_256: u32,
    tech: &TechParams,
    seed: u64,
) -> f64 {
    let arb = priority_arbiter(n_masters);
    let mut rng = SplitMix64::new(seed);
    let mut sim = LogicSim::new(&arb.netlist);
    sim.reset_counters();
    for _ in 0..cycles {
        for &r in &arb.req {
            sim.set_input(r, rng.below(256) < u64::from(req_prob_256));
        }
        sim.step();
    }
    switching_energy(&sim, tech) / cycles as f64
}

fn collect_points(acc: &[(f64, u64)], proto: impl Fn(u32) -> HdPoint) -> Vec<HdPoint> {
    acc.iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(hd, (e, n))| {
            let mut p = proto(hd as u32);
            p.energy = e / *n as f64;
            p.samples = *n;
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let distinct: std::collections::HashSet<_> = va.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn mask_with_weight_has_exact_popcount() {
        let mut rng = SplitMix64::new(7);
        for k in 0..=16u32 {
            let m = rng.mask_with_weight(16, k);
            assert_eq!(m.count_ones(), k);
            assert_eq!(m >> 16, 0);
        }
    }

    #[test]
    fn decoder_sweep_energy_grows_with_hd() {
        let tech = TechParams::default();
        let pts = sweep_decoder(8, &tech);
        assert!(!pts.is_empty());
        // Energy should be monotonically non-decreasing with HD on average:
        // more flipped address bits -> more inverter and AND-tree activity.
        for w in pts.windows(2) {
            assert!(
                w[1].energy >= w[0].energy * 0.8,
                "HD {} -> {} energy dropped sharply: {} vs {}",
                w[0].hd_in,
                w[1].hd_in,
                w[0].energy,
                w[1].energy
            );
        }
        // All samples accounted: ordered pairs of 8 distinct codes = 56.
        let total: u64 = pts.iter().map(|p| p.samples).sum();
        assert_eq!(total, 56);
    }

    #[test]
    fn mux_data_sweep_scales_with_hd() {
        let tech = TechParams::default();
        let pts = sweep_mux_data(16, 4, 20, &tech, 1);
        let hd0 = pts.iter().find(|p| p.hd_in == 0).unwrap();
        let hd8 = pts.iter().find(|p| p.hd_in == 8).unwrap();
        let hd16 = pts.iter().find(|p| p.hd_in == 16).unwrap();
        assert!(hd0.energy < 1e-18, "no flips -> (almost) no energy");
        assert!(hd8.energy > 0.0);
        assert!(hd16.energy > hd8.energy);
    }

    #[test]
    fn mux_select_sweep_produces_energy() {
        let tech = TechParams::default();
        let pts = sweep_mux_select(8, 4, 10, &tech, 3);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.hd_sel >= 1);
            assert!(p.energy > 0.0, "select change must cost energy");
        }
    }

    #[test]
    fn arbiter_energy_scales_with_request_activity() {
        let tech = TechParams::default();
        let quiet = measure_arbiter(4, 400, 8, &tech, 5);
        let busy = measure_arbiter(4, 400, 128, &tech, 5);
        assert!(busy > quiet, "busy {busy} <= quiet {quiet}");
    }
}
