//! Generators that synthesize the paper's AHB sub-blocks at gate level.
//!
//! The paper characterizes its macromodels against gate-level descriptions:
//! the address decoder is "a simple one-hot decoding behavior ... synthesized
//! only with NOT and AND gates"; multiplexers are AND-OR trees; the arbiter
//! is a small priority network with registered grants. These generators
//! produce exactly those structures so the `characterize` module can measure
//! them.

use crate::netlist::{GateKind, NetId, Netlist};

/// Number of select/address bits needed to distinguish `n` alternatives.
///
/// Matches the paper's "first integer number greater than `log2(n_O - 1)`",
/// which equals `ceil(log2(n))` for every `n >= 2`.
pub fn addr_bits(n: usize) -> usize {
    assert!(n >= 2, "need at least two alternatives");
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// A synthesized one-hot address decoder (NOT + AND gates only).
#[derive(Debug)]
pub struct Decoder {
    /// The finalized netlist.
    pub netlist: Netlist,
    /// Address input nets (bit 0 first).
    pub addr: Vec<NetId>,
    /// One-hot output nets, `outputs[i]` high iff the address equals `i`.
    pub outputs: Vec<NetId>,
}

/// Synthesizes a one-hot decoder with `n_outputs` outputs.
///
/// Outputs for addresses `>= n_outputs` simply do not exist (as in the
/// paper's slave-select decoder, where unmapped addresses go to a default
/// slave chosen elsewhere).
///
/// # Panics
///
/// Panics if `n_outputs < 2`.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{one_hot_decoder, LogicSim};
///
/// let dec = one_hot_decoder(4);
/// let mut sim = LogicSim::new(&dec.netlist);
/// sim.set_bus(&dec.addr, 2);
/// sim.settle();
/// assert_eq!(sim.bus_value(&dec.outputs), 0b0100);
/// ```
pub fn one_hot_decoder(n_outputs: usize) -> Decoder {
    assert!(n_outputs >= 2, "decoder needs at least two outputs");
    let n_in = addr_bits(n_outputs);
    let mut n = Netlist::new(&format!("decoder{n_outputs}"));
    let addr = n.input_bus("a", n_in);
    let inv: Vec<NetId> = addr
        .iter()
        .enumerate()
        .map(|(i, &a)| n.not(a, &format!("na[{i}]")))
        .collect();
    let mut outputs = Vec::with_capacity(n_outputs);
    for code in 0..n_outputs {
        let literals: Vec<NetId> = (0..n_in)
            .map(|bit| {
                if (code >> bit) & 1 == 1 {
                    addr[bit]
                } else {
                    inv[bit]
                }
            })
            .collect();
        // AND chain of 2-input gates exposes internal nodes that switch.
        let out = if literals.len() == 1 {
            n.gate(GateKind::Buf, &[literals[0]], &format!("y[{code}]"))
        } else {
            let mut acc = literals[0];
            for (k, &lit) in literals.iter().enumerate().skip(1) {
                let name = if k == literals.len() - 1 {
                    format!("y[{code}]")
                } else {
                    format!("y{code}_p{k}")
                };
                acc = n.and2(acc, lit, &name);
            }
            acc
        };
        n.mark_output(out);
        outputs.push(out);
    }
    let netlist = n
        .finalize()
        .expect("generated decoder is structurally sound");
    Decoder {
        netlist,
        addr,
        outputs,
    }
}

/// A synthesized AND-OR-tree multiplexer.
#[derive(Debug)]
pub struct Mux {
    /// The finalized netlist.
    pub netlist: Netlist,
    /// `data[j]` is the bit vector of input channel `j` (bit 0 first).
    pub data: Vec<Vec<NetId>>,
    /// Select input nets (binary-encoded channel index, bit 0 first).
    pub sel: Vec<NetId>,
    /// Output bit nets (bit 0 first).
    pub outputs: Vec<NetId>,
}

/// Synthesizes a `width`-bit multiplexer with `n_inputs` channels:
/// a shared one-hot select decoder, per-bit AND gating and an OR tree.
///
/// # Panics
///
/// Panics if `width == 0` or `n_inputs < 2`.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{mux_tree, LogicSim};
///
/// let mux = mux_tree(8, 3);
/// let mut sim = LogicSim::new(&mux.netlist);
/// sim.set_bus(&mux.data[2], 0xAB);
/// sim.set_bus(&mux.sel, 2);
/// sim.settle();
/// assert_eq!(sim.bus_value(&mux.outputs), 0xAB);
/// ```
pub fn mux_tree(width: usize, n_inputs: usize) -> Mux {
    assert!(width > 0, "mux width must be positive");
    assert!(n_inputs >= 2, "mux needs at least two inputs");
    let s_bits = addr_bits(n_inputs);
    let mut n = Netlist::new(&format!("mux{width}x{n_inputs}"));
    let data: Vec<Vec<NetId>> = (0..n_inputs)
        .map(|j| n.input_bus(&format!("d{j}"), width))
        .collect();
    let sel = n.input_bus("s", s_bits);
    // Shared select decoder (NOT + AND), one line per channel.
    let inv: Vec<NetId> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| n.not(s, &format!("ns[{i}]")))
        .collect();
    let mut lines = Vec::with_capacity(n_inputs);
    for j in 0..n_inputs {
        let literals: Vec<NetId> = (0..s_bits)
            .map(|bit| {
                if (j >> bit) & 1 == 1 {
                    sel[bit]
                } else {
                    inv[bit]
                }
            })
            .collect();
        let line = if literals.len() == 1 {
            n.gate(GateKind::Buf, &[literals[0]], &format!("line[{j}]"))
        } else {
            let mut acc = literals[0];
            for (k, &lit) in literals.iter().enumerate().skip(1) {
                let name = if k == literals.len() - 1 {
                    format!("line[{j}]")
                } else {
                    format!("line{j}_p{k}")
                };
                acc = n.and2(acc, lit, &name);
            }
            acc
        };
        lines.push(line);
    }
    // Per output bit: gate each channel with its line, then OR-tree.
    let mut outputs = Vec::with_capacity(width);
    #[allow(clippy::needless_range_loop)] // k indexes into every channel's bit vector
    for k in 0..width {
        let mut layer: Vec<NetId> = (0..n_inputs)
            .map(|j| n.and2(data[j][k], lines[j], &format!("g{k}_{j}")))
            .collect();
        let mut depth = 0;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let is_root = layer.len() == 2;
                    let name = if is_root {
                        format!("y[{k}]")
                    } else {
                        format!("or{k}_{depth}_{}", next.len())
                    };
                    next.push(n.or2(pair[0], pair[1], &name));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            depth += 1;
        }
        let out = layer[0];
        n.mark_output(out);
        outputs.push(out);
    }
    let netlist = n.finalize().expect("generated mux is structurally sound");
    Mux {
        netlist,
        data,
        sel,
        outputs,
    }
}

/// A synthesized fixed-priority arbiter with registered grants.
#[derive(Debug)]
pub struct Arbiter {
    /// The finalized netlist.
    pub netlist: Netlist,
    /// Request inputs, `req[0]` has the highest priority.
    pub req: Vec<NetId>,
    /// Combinational (next-cycle) grant nets, one-hot.
    pub grant_next: Vec<NetId>,
    /// Registered grant outputs (one-hot, updates on [`step`]).
    ///
    /// [`step`]: crate::LogicSim::step
    pub grant: Vec<NetId>,
}

/// Synthesizes an `n`-master fixed-priority arbiter. Master 0 is also the
/// default master: it is granted when nobody requests (as in AMBA AHB).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{priority_arbiter, LogicSim};
///
/// let arb = priority_arbiter(3);
/// let mut sim = LogicSim::new(&arb.netlist);
/// sim.set_input(arb.req[1], true);
/// sim.set_input(arb.req[2], true);
/// sim.step(); // grants are registered
/// assert_eq!(sim.bus_value(&arb.grant), 0b010); // master 1 wins
/// ```
pub fn priority_arbiter(n_masters: usize) -> Arbiter {
    assert!(n_masters >= 2, "arbiter needs at least two masters");
    let mut n = Netlist::new(&format!("arbiter{n_masters}"));
    let req = n.input_bus("req", n_masters);
    // Cumulative "someone above me requested" chain.
    let mut cum = req[0];
    let mut cum_chain = vec![cum];
    for (i, &r) in req.iter().enumerate().skip(1) {
        cum = n.or2(cum, r, &format!("cum[{i}]"));
        cum_chain.push(cum);
    }
    let any = cum_chain[n_masters - 1];
    let none = n.not(any, "none");
    // grant_next[0] = req[0] OR nobody-requests (default master).
    let mut grant_next = Vec::with_capacity(n_masters);
    grant_next.push(n.or2(req[0], none, "gn[0]"));
    for i in 1..n_masters {
        let above = cum_chain[i - 1];
        let quiet = n.not(above, &format!("quiet[{i}]"));
        grant_next.push(n.and2(req[i], quiet, &format!("gn[{i}]")));
    }
    let grant: Vec<NetId> = grant_next
        .iter()
        .enumerate()
        .map(|(i, &g)| n.dff(g, &format!("grant[{i}]")))
        .collect();
    for &g in &grant {
        n.mark_output(g);
    }
    let netlist = n
        .finalize()
        .expect("generated arbiter is structurally sound");
    Arbiter {
        netlist,
        req,
        grant_next,
        grant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::LogicSim;

    #[test]
    fn addr_bits_matches_paper_formula() {
        // "first integer greater than log2(n_O - 1)"
        assert_eq!(addr_bits(2), 1);
        assert_eq!(addr_bits(3), 2);
        assert_eq!(addr_bits(4), 2);
        assert_eq!(addr_bits(5), 3);
        assert_eq!(addr_bits(8), 3);
        assert_eq!(addr_bits(9), 4);
        assert_eq!(addr_bits(16), 4);
    }

    #[test]
    fn decoder_is_one_hot_for_all_codes() {
        for n_out in [2usize, 3, 4, 5, 8, 11, 16] {
            let dec = one_hot_decoder(n_out);
            let mut sim = LogicSim::new(&dec.netlist);
            for code in 0..n_out {
                sim.set_bus(&dec.addr, code as u64);
                sim.settle();
                assert_eq!(
                    sim.bus_value(&dec.outputs),
                    1u64 << code,
                    "decoder({n_out}) code {code}"
                );
            }
        }
    }

    #[test]
    fn decoder_uses_only_not_and_buf_and() {
        let dec = one_hot_decoder(8);
        for g in dec.netlist.gates() {
            assert!(
                matches!(g.kind, GateKind::Not | GateKind::And | GateKind::Buf),
                "unexpected gate {:?}",
                g.kind
            );
        }
    }

    #[test]
    fn mux_selects_each_channel() {
        let mux = mux_tree(16, 5);
        let mut sim = LogicSim::new(&mux.netlist);
        for (j, pattern) in [
            (0usize, 0x1234u64),
            (1, 0xFFFF),
            (2, 0x0001),
            (3, 0x8000),
            (4, 0xA5A5),
        ] {
            for (ch, bits) in mux.data.iter().enumerate() {
                sim.set_bus(bits, if ch == j { pattern } else { !pattern & 0xFFFF });
            }
            sim.set_bus(&mux.sel, j as u64);
            sim.settle();
            assert_eq!(sim.bus_value(&mux.outputs), pattern, "channel {j}");
        }
    }

    #[test]
    fn mux_output_follows_selected_input_changes_only() {
        let mux = mux_tree(8, 2);
        let mut sim = LogicSim::new(&mux.netlist);
        sim.set_bus(&mux.data[0], 0x00);
        sim.set_bus(&mux.data[1], 0xFF);
        sim.set_bus(&mux.sel, 0);
        sim.settle();
        sim.reset_counters();
        // Changing the unselected channel must not move the output.
        sim.set_bus(&mux.data[1], 0x0F);
        sim.settle();
        assert_eq!(sim.bus_value(&mux.outputs), 0x00);
        let out_toggles: u64 = mux.outputs.iter().map(|&o| sim.toggles(o)).sum();
        assert_eq!(out_toggles, 0);
    }

    #[test]
    fn arbiter_grants_highest_priority_requester() {
        let arb = priority_arbiter(4);
        let mut sim = LogicSim::new(&arb.netlist);
        sim.set_bus(&arb.req, 0b1100); // masters 2 and 3 request
        sim.step();
        assert_eq!(sim.bus_value(&arb.grant), 0b0100); // master 2 wins
        sim.set_bus(&arb.req, 0b1101);
        sim.step();
        assert_eq!(sim.bus_value(&arb.grant), 0b0001); // master 0 preempts
    }

    #[test]
    fn arbiter_default_master_when_idle() {
        let arb = priority_arbiter(3);
        let mut sim = LogicSim::new(&arb.netlist);
        sim.set_bus(&arb.req, 0);
        sim.step();
        assert_eq!(sim.bus_value(&arb.grant), 0b001, "default master granted");
    }

    #[test]
    fn arbiter_grant_is_registered_one_cycle_late() {
        let arb = priority_arbiter(2);
        let mut sim = LogicSim::new(&arb.netlist);
        sim.set_bus(&arb.req, 0b10);
        sim.settle(); // combinational only: grant_next moves, grant does not
        assert_eq!(sim.bus_value(&arb.grant), 0b00);
        let gn: u64 = sim.bus_value(&arb.grant_next);
        assert_eq!(gn, 0b10);
        sim.step();
        assert_eq!(sim.bus_value(&arb.grant), 0b10);
    }

    #[test]
    fn grant_is_always_one_hot() {
        let arb = priority_arbiter(4);
        let mut sim = LogicSim::new(&arb.netlist);
        for pattern in 0u64..16 {
            sim.set_bus(&arb.req, pattern);
            sim.step();
            let g = sim.bus_value(&arb.grant);
            assert_eq!(g.count_ones(), 1, "req {pattern:04b} -> grant {g:04b}");
        }
    }
}
