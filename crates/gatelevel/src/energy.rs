//! Switching-energy accounting over gate-level activity.
//!
//! ## Energy convention
//!
//! Following the paper's macromodels (which carry a `V_DD²/4` prefactor), the
//! energy attributed to **one toggle** (either direction) of a net with
//! capacitance `C` is `C · V_DD² / 4`. Over a full charge/discharge pair this
//! sums to `C·V²/2`, i.e. the usual dynamic-power convention with the energy
//! split evenly between rising and falling transitions.

use crate::netlist::Netlist;
use crate::sim::LogicSim;

/// Technology parameters shared by gate-level measurement and the analytic
/// macromodels. Defaults approximate the paper's early-2000s process.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::TechParams;
///
/// let tech = TechParams::default();
/// // One toggle of an internal node:
/// let e = tech.energy_per_toggle(tech.c_internal);
/// assert!(e > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Supply voltage swing in volts.
    pub vdd: f64,
    /// Equivalent capacitance of an internal gate node (the paper's `C_PD`),
    /// in farads.
    pub c_internal: f64,
    /// Capacitance of a primary-output node (the paper's `C_O`), in farads.
    pub c_output: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            vdd: 3.3,
            c_internal: 50e-15, // 50 fF
            c_output: 150e-15,  // 150 fF: output nodes drive long wires
        }
    }
}

impl TechParams {
    /// Energy (joules) for one toggle of a node with capacitance `c` (F).
    pub fn energy_per_toggle(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd / 4.0
    }
}

/// Computes the total switching energy (joules) recorded by a simulator:
/// internal nets are weighted with `C_PD`, primary outputs with `C_O`.
/// Primary-input activity is charged to the driver, not this block, and is
/// therefore excluded.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{switching_energy, LogicSim, Netlist, TechParams};
///
/// let mut n = Netlist::new("inv");
/// let a = n.input("a");
/// let y = n.not(a, "y");
/// n.mark_output(y);
/// let n = n.finalize()?;
/// let mut sim = LogicSim::new(&n);
/// sim.set_input(a, true);
/// sim.settle();
/// let tech = TechParams::default();
/// let e = switching_energy(&sim, &tech);
/// assert!((e - tech.energy_per_toggle(tech.c_output)).abs() < 1e-21);
/// # Ok::<(), ahbpower_gate::BuildNetlistError>(())
/// ```
pub fn switching_energy(sim: &LogicSim<'_>, tech: &TechParams) -> f64 {
    energy_breakdown(sim, tech).total()
}

/// Per-category energy of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy on internal (non-output, non-input) nets, joules.
    pub internal: f64,
    /// Energy on primary-output nets, joules.
    pub output: f64,
    /// Toggles on internal nets.
    pub internal_toggles: u64,
    /// Toggles on output nets.
    pub output_toggles: u64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.internal + self.output
    }
}

/// Computes energy split into internal-node and output-node contributions.
pub fn energy_breakdown(sim: &LogicSim<'_>, tech: &TechParams) -> EnergyBreakdown {
    let netlist: &Netlist = sim.netlist();
    let mut b = EnergyBreakdown::default();
    let input_set: std::collections::HashSet<_> = netlist.inputs().iter().copied().collect();
    for (idx, &t) in sim.toggle_counts().iter().enumerate() {
        if t == 0 {
            continue;
        }
        let net = crate::netlist::NetId(idx as u32);
        if input_set.contains(&net) {
            continue; // charged to whoever drives the input
        }
        if netlist.is_output(net) {
            b.output += t as f64 * tech.energy_per_toggle(tech.c_output);
            b.output_toggles += t;
        } else {
            b.internal += t as f64 * tech.energy_per_toggle(tech.c_internal);
            b.internal_toggles += t;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn default_params_are_sane() {
        let t = TechParams::default();
        assert!(t.vdd > 0.0 && t.c_internal > 0.0 && t.c_output > 0.0);
        // 50 fF at 3.3 V, one toggle: ~0.136 pJ
        let e = t.energy_per_toggle(t.c_internal);
        assert!((e - 1.36e-13).abs() < 1e-14, "e = {e}");
    }

    #[test]
    fn breakdown_splits_internal_and_output() {
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let b = n.not(a, "b"); // internal
        let c = n.not(b, "c"); // output
        n.mark_output(c);
        let n = n.finalize().unwrap();
        let a = n.inputs()[0];
        let mut sim = LogicSim::new(&n);
        let tech = TechParams::default();
        sim.set_input(a, true);
        sim.settle();
        let bd = energy_breakdown(&sim, &tech);
        assert_eq!(bd.internal_toggles, 1);
        assert_eq!(bd.output_toggles, 1);
        let expect =
            tech.energy_per_toggle(tech.c_internal) + tech.energy_per_toggle(tech.c_output);
        assert!((bd.total() - expect).abs() < 1e-21);
        assert!((switching_energy(&sim, &tech) - expect).abs() < 1e-21);
    }

    #[test]
    fn input_toggles_are_excluded() {
        let mut n = Netlist::new("wire");
        let a = n.input("a");
        let y = n.gate(crate::GateKind::Buf, &[a], "y");
        n.mark_output(y);
        let n = n.finalize().unwrap();
        let a = n.inputs()[0];
        let mut sim = LogicSim::new(&n);
        let tech = TechParams::default();
        sim.set_input(a, true);
        sim.settle();
        let bd = energy_breakdown(&sim, &tech);
        assert_eq!(bd.internal_toggles, 0);
        assert_eq!(bd.output_toggles, 1);
    }

    #[test]
    fn energy_scales_with_vdd_squared() {
        let lo = TechParams {
            vdd: 1.0,
            ..TechParams::default()
        };
        let hi = TechParams {
            vdd: 2.0,
            ..TechParams::default()
        };
        let c = 1e-13;
        assert!((hi.energy_per_toggle(c) / lo.energy_per_toggle(c) - 4.0).abs() < 1e-12);
    }
}
