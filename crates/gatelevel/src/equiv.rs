//! Exhaustive combinational equivalence checking.
//!
//! After importing a netlist from BLIF (or regenerating one differently),
//! [`check_equivalence`] proves two combinational netlists implement the
//! same boolean function by exhausting the input space — the classic
//! "formality-lite" companion to interchange formats.

use std::error::Error;
use std::fmt;

use crate::netlist::Netlist;
use crate::sim::LogicSim;

/// Why two netlists could not be compared or differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceError {
    /// Interfaces differ (input/output counts).
    InterfaceMismatch {
        /// (inputs, outputs) of the first netlist.
        a: (usize, usize),
        /// (inputs, outputs) of the second netlist.
        b: (usize, usize),
    },
    /// Exhaustive checking is capped at this many inputs.
    TooManyInputs {
        /// The offending input count.
        inputs: usize,
        /// The supported maximum.
        max: usize,
    },
    /// Sequential netlists (flip-flops) are out of scope.
    Sequential,
    /// A differing input vector was found.
    Mismatch {
        /// The input assignment (bit i = input i).
        input: u64,
        /// First netlist's outputs.
        a_out: u64,
        /// Second netlist's outputs.
        b_out: u64,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::InterfaceMismatch { a, b } => write!(
                f,
                "interface mismatch: {}x{} vs {}x{} (inputs x outputs)",
                a.0, a.1, b.0, b.1
            ),
            EquivalenceError::TooManyInputs { inputs, max } => {
                write!(f, "{inputs} inputs exceed the exhaustive limit of {max}")
            }
            EquivalenceError::Sequential => f.write_str("netlists with flip-flops not supported"),
            EquivalenceError::Mismatch {
                input,
                a_out,
                b_out,
            } => write!(
                f,
                "functions differ at input {input:#b}: {a_out:#b} vs {b_out:#b}"
            ),
        }
    }
}

impl Error for EquivalenceError {}

/// Maximum inputs for exhaustive equivalence checking.
pub const MAX_EQUIV_INPUTS: usize = 20;

/// Proves two combinational netlists equivalent by exhausting all input
/// assignments (inputs and outputs are matched by position).
///
/// # Errors
///
/// See [`EquivalenceError`]; `Ok(())` means the functions are identical.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{check_equivalence, from_blif, to_blif, one_hot_decoder};
///
/// let dec = one_hot_decoder(4);
/// let round = from_blif(&to_blif(&dec.netlist)).expect("round-trips");
/// check_equivalence(&dec.netlist, &round)?;
/// # Ok::<(), ahbpower_gate::EquivalenceError>(())
/// ```
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> Result<(), EquivalenceError> {
    let ia = a.inputs().len();
    let ib = b.inputs().len();
    let oa = a.outputs().len();
    let ob = b.outputs().len();
    if (ia, oa) != (ib, ob) {
        return Err(EquivalenceError::InterfaceMismatch {
            a: (ia, oa),
            b: (ib, ob),
        });
    }
    if !a.dffs().is_empty() || !b.dffs().is_empty() {
        return Err(EquivalenceError::Sequential);
    }
    if ia > MAX_EQUIV_INPUTS {
        return Err(EquivalenceError::TooManyInputs {
            inputs: ia,
            max: MAX_EQUIV_INPUTS,
        });
    }
    let mut sim_a = LogicSim::new(a);
    let mut sim_b = LogicSim::new(b);
    let ins_a = a.inputs().to_vec();
    let ins_b = b.inputs().to_vec();
    for input in 0..(1u64 << ia) {
        sim_a.set_bus(&ins_a, input);
        sim_a.settle();
        sim_b.set_bus(&ins_b, input);
        sim_b.settle();
        let a_out = sim_a.bus_value(a.outputs());
        let b_out = sim_b.bus_value(b.outputs());
        if a_out != b_out {
            return Err(EquivalenceError::Mismatch {
                input,
                a_out,
                b_out,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blif::{from_blif, to_blif};
    use crate::netlist::GateKind;
    use crate::synth::{mux_tree, one_hot_decoder, priority_arbiter};

    #[test]
    fn blif_round_trips_are_equivalent() {
        for n_out in [2usize, 3, 5, 8, 16] {
            let dec = one_hot_decoder(n_out);
            let round = from_blif(&to_blif(&dec.netlist)).unwrap();
            check_equivalence(&dec.netlist, &round)
                .unwrap_or_else(|e| panic!("decoder({n_out}): {e}"));
        }
        let mux = mux_tree(4, 4);
        let round = from_blif(&to_blif(&mux.netlist)).unwrap();
        check_equivalence(&mux.netlist, &round).unwrap();
    }

    #[test]
    fn different_functions_are_caught() {
        let mut a = Netlist::new("and");
        let x = a.input("x");
        let y = a.input("y");
        let o = a.and2(x, y, "o");
        a.mark_output(o);
        let a = a.finalize().unwrap();
        let mut b = Netlist::new("or");
        let x = b.input("x");
        let y = b.input("y");
        let o = b.or2(x, y, "o");
        b.mark_output(o);
        let b = b.finalize().unwrap();
        let err = check_equivalence(&a, &b).unwrap_err();
        assert!(matches!(err, EquivalenceError::Mismatch { .. }));
        assert!(err.to_string().contains("differ"));
    }

    #[test]
    fn demorgan_equivalence_holds() {
        // NOT(a AND b) == NOT(a) OR NOT(b)
        let mut lhs = Netlist::new("nand");
        let a = lhs.input("a");
        let b = lhs.input("b");
        let o = lhs.gate(GateKind::Nand, &[a, b], "o");
        lhs.mark_output(o);
        let lhs = lhs.finalize().unwrap();
        let mut rhs = Netlist::new("demorgan");
        let a = rhs.input("a");
        let b = rhs.input("b");
        let na = rhs.not(a, "na");
        let nb = rhs.not(b, "nb");
        let o = rhs.or2(na, nb, "o");
        rhs.mark_output(o);
        let rhs = rhs.finalize().unwrap();
        check_equivalence(&lhs, &rhs).unwrap();
    }

    #[test]
    fn guards_reject_out_of_scope_inputs() {
        let dec2 = one_hot_decoder(2);
        let dec4 = one_hot_decoder(4);
        assert!(matches!(
            check_equivalence(&dec2.netlist, &dec4.netlist),
            Err(EquivalenceError::InterfaceMismatch { .. })
        ));
        let arb = priority_arbiter(2);
        assert_eq!(
            check_equivalence(&arb.netlist, &arb.netlist),
            Err(EquivalenceError::Sequential)
        );
        let wide = mux_tree(12, 4); // 48 data + 2 select inputs
        assert!(matches!(
            check_equivalence(&wide.netlist, &wide.netlist),
            Err(EquivalenceError::TooManyInputs { .. })
        ));
    }
}
