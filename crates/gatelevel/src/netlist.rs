//! Gate-level netlist representation and builder.
//!
//! A [`Netlist`] is a directed graph of nets driven by primitive gates or
//! D flip-flops. The builder API creates nets implicitly as gate outputs;
//! [`Netlist::finalize`] checks structural sanity and computes a topological
//! evaluation order for the combinational portion.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Identifier of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

/// Primitive combinational gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Identity (single input).
    Buf,
    /// Inversion (single input).
    Not,
    /// Logical AND (two or more inputs).
    And,
    /// Logical OR (two or more inputs).
    Or,
    /// Inverted AND.
    Nand,
    /// Inverted OR.
    Nor,
    /// Exclusive OR (two or more inputs, parity).
    Xor,
    /// Inverted XOR.
    Xnor,
}

impl GateKind {
    /// Evaluates the gate function over its input values.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
        }
    }

    fn min_inputs(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    fn max_inputs(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            _ => usize::MAX,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        f.write_str(s)
    }
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The boolean function.
    pub kind: GateKind,
    /// Input nets.
    pub inputs: Vec<NetId>,
    /// The net this gate drives.
    pub output: NetId,
}

/// A D flip-flop: `q` takes the value of `d` at each clock step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dff {
    /// Data input net.
    pub d: NetId,
    /// Registered output net.
    pub q: NetId,
}

/// Errors detected by [`Netlist::finalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// A combinational cycle exists through the listed net.
    CombinationalCycle {
        /// A net on the cycle.
        net: NetId,
        /// Its name.
        name: String,
    },
    /// A net has no driver and is not a primary input or DFF output.
    Undriven {
        /// The floating net.
        net: NetId,
        /// Its name.
        name: String,
    },
    /// A net is driven by more than one gate/flip-flop/input.
    MultipleDrivers {
        /// The contended net.
        net: NetId,
        /// Its name.
        name: String,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::CombinationalCycle { net, name } => {
                write!(f, "combinational cycle through {net} ({name})")
            }
            BuildNetlistError::Undriven { net, name } => {
                write!(f, "net {net} ({name}) has no driver")
            }
            BuildNetlistError::MultipleDrivers { net, name } => {
                write!(f, "net {net} ({name}) has multiple drivers")
            }
        }
    }
}

impl Error for BuildNetlistError {}

/// Gate-count statistics for a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Total nets.
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// D flip-flops.
    pub dffs: usize,
}

/// A gate-level netlist.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{GateKind, Netlist};
///
/// let mut n = Netlist::new("half_adder");
/// let a = n.input("a");
/// let b = n.input("b");
/// let sum = n.gate(GateKind::Xor, &[a, b], "sum");
/// let carry = n.gate(GateKind::And, &[a, b], "carry");
/// n.mark_output(sum);
/// n.mark_output(carry);
/// let n = n.finalize()?;
/// assert_eq!(n.stats().gates, 2);
/// # Ok::<(), ahbpower_gate::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    /// Gate evaluation order (indices into `gates`); valid after `finalize`.
    topo_order: Vec<usize>,
    finalized: bool,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_string(),
            net_names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            topo_order: Vec::new(),
            finalized: false,
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn new_net(&mut self, name: &str) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_string());
        id
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.new_net(name);
        self.inputs.push(id);
        id
    }

    /// Declares a vector of primary inputs named `name[0..width]`.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(&format!("{name}[{i}]")))
            .collect()
    }

    /// Declares a net with no driver yet. Useful for feedback structures;
    /// drive it later with [`Netlist::gate_into`], or [`Netlist::finalize`]
    /// reports it as undriven.
    pub fn wire(&mut self, name: &str) -> NetId {
        self.new_net(name)
    }

    /// Adds a gate driving a fresh net named `out_name`.
    ///
    /// # Panics
    ///
    /// Panics if the input count is invalid for `kind` (e.g. a two-input
    /// NOT), or if the netlist was already finalized.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId], out_name: &str) -> NetId {
        let output = self.new_net(out_name);
        self.gate_into(kind, inputs, output);
        output
    }

    /// Adds a gate driving the pre-declared net `output` (see
    /// [`Netlist::wire`]). This is the only way to close feedback loops.
    ///
    /// # Panics
    ///
    /// Panics if the input count is invalid for `kind` or the netlist was
    /// already finalized.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], output: NetId) {
        assert!(!self.finalized, "netlist already finalized");
        assert!(
            inputs.len() >= kind.min_inputs() && inputs.len() <= kind.max_inputs(),
            "{kind} gate cannot take {} inputs",
            inputs.len()
        );
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
    }

    /// Convenience: NOT gate.
    pub fn not(&mut self, a: NetId, out_name: &str) -> NetId {
        self.gate(GateKind::Not, &[a], out_name)
    }

    /// Convenience: two-input AND gate.
    pub fn and2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(GateKind::And, &[a, b], out_name)
    }

    /// Convenience: two-input OR gate.
    pub fn or2(&mut self, a: NetId, b: NetId, out_name: &str) -> NetId {
        self.gate(GateKind::Or, &[a, b], out_name)
    }

    /// Adds a D flip-flop driving a fresh net named `q_name`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist was already finalized.
    pub fn dff(&mut self, d: NetId, q_name: &str) -> NetId {
        assert!(!self.finalized, "netlist already finalized");
        let q = self.new_net(q_name);
        self.dffs.push(Dff { d, q });
        q
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// The name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// True if the net is a primary output.
    pub fn is_output(&self, net: NetId) -> bool {
        self.outputs.contains(&net)
    }

    /// Gate evaluation order. Valid only after [`Netlist::finalize`].
    pub(crate) fn topo_order(&self) -> &[usize] {
        debug_assert!(self.finalized, "topo order requires finalize()");
        &self.topo_order
    }

    /// Gate-count statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            nets: self.net_names.len(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            gates: self.gates.len(),
            dffs: self.dffs.len(),
        }
    }

    /// Checks structural sanity (every net driven exactly once, no
    /// combinational cycles) and computes the evaluation order.
    ///
    /// # Errors
    ///
    /// [`BuildNetlistError::Undriven`] if a non-input net has no driver;
    /// [`BuildNetlistError::CombinationalCycle`] if the gate graph is cyclic
    /// (paths through flip-flops are fine).
    pub fn finalize(mut self) -> Result<Netlist, BuildNetlistError> {
        let n = self.net_names.len();
        // Classify drivers, rejecting contention.
        let mut driven = vec![false; n];
        let claim = |driven: &mut Vec<bool>, id: NetId, names: &[String]| {
            if driven[id.index()] {
                return Err(BuildNetlistError::MultipleDrivers {
                    net: id,
                    name: names[id.index()].clone(),
                });
            }
            driven[id.index()] = true;
            Ok(())
        };
        for id in &self.inputs {
            claim(&mut driven, *id, &self.net_names)?;
        }
        for dff in &self.dffs {
            claim(&mut driven, dff.q, &self.net_names)?;
        }
        let mut driver_gate: Vec<Option<usize>> = vec![None; n];
        for (gi, g) in self.gates.iter().enumerate() {
            claim(&mut driven, g.output, &self.net_names)?;
            driver_gate[g.output.index()] = Some(gi);
        }
        for (i, d) in driven.iter().enumerate() {
            if !d {
                return Err(BuildNetlistError::Undriven {
                    net: NetId(i as u32),
                    name: self.net_names[i].clone(),
                });
            }
        }
        // Kahn's algorithm over gates; edges only through combinational nets.
        let mut indegree = vec![0usize; self.gates.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for input in &g.inputs {
                if let Some(src) = driver_gate[input.index()] {
                    indegree[gi] += 1;
                    dependents[src].push(gi);
                }
            }
        }
        let mut queue: VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gi) = queue.pop_front() {
            order.push(gi);
            for &dep in &dependents[gi] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    queue.push_back(dep);
                }
            }
        }
        if order.len() != self.gates.len() {
            let cyclic = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("a cyclic gate must remain");
            let net = self.gates[cyclic].output;
            return Err(BuildNetlistError::CombinationalCycle {
                net,
                name: self.net_names[net.index()].clone(),
            });
        }
        self.topo_order = order;
        self.finalized = true;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(Or.eval(&[false, true]));
        assert!(!Or.eval(&[false, false]));
        assert!(Not.eval(&[false]));
        assert!(!Not.eval(&[true]));
        assert!(Buf.eval(&[true]));
        assert!(Nand.eval(&[true, false]));
        assert!(!Nand.eval(&[true, true]));
        assert!(Nor.eval(&[false, false]));
        assert!(!Nor.eval(&[true, false]));
        assert!(Xor.eval(&[true, false, false]));
        assert!(!Xor.eval(&[true, true, false]));
        assert!(Xnor.eval(&[true, true]));
        assert!(!Xnor.eval(&[true, false]));
    }

    #[test]
    fn builder_and_stats() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b, "x");
        let y = n.not(x, "y");
        n.mark_output(y);
        n.mark_output(y); // idempotent
        let n = n.finalize().unwrap();
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.nets, 4);
        assert_eq!(n.net_name(a), "a");
        assert!(n.is_output(y));
        assert!(!n.is_output(x));
        assert_eq!(n.name(), "t");
    }

    #[test]
    fn input_bus_names_bits() {
        let mut n = Netlist::new("t");
        let bus = n.input_bus("addr", 3);
        assert_eq!(bus.len(), 3);
        assert_eq!(n.net_name(bus[2]), "addr[2]");
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        // Build a chain in reverse declaration order is impossible with the
        // builder (outputs are fresh), so build forward and check order.
        let b = n.not(a, "b");
        let c = n.not(b, "c");
        let d = n.and2(a, c, "d");
        n.mark_output(d);
        let n = n.finalize().unwrap();
        let order = n.topo_order();
        let pos = |gi: usize| order.iter().position(|&x| x == gi).unwrap();
        assert!(pos(0) < pos(1)); // b before c
        assert!(pos(1) < pos(2)); // c before d
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let fb = n.wire("fb");
        let x = n.and2(a, fb, "x");
        n.gate_into(GateKind::Not, &[x], fb); // fb = NOT(a AND fb): a loop
        n.mark_output(x);
        let err = n.finalize().unwrap_err();
        assert!(matches!(err, BuildNetlistError::CombinationalCycle { .. }));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn feedback_through_dff_is_legal() {
        let mut n = Netlist::new("toggle");
        let q = n.wire("q_comb_placeholder");
        let _ = q; // wire() exists independent of DFF usage
        let en = n.input("en");
        let q_ff = n.dff(en, "q"); // q follows en one step late
        let d = n.and2(en, q_ff, "d");
        n.mark_output(d);
        assert!(matches!(
            n.finalize(),
            Err(BuildNetlistError::Undriven { .. })
        ));
        // The placeholder wire above was never driven: that is the undriven
        // error path. Rebuild without it to show DFF feedback itself is fine.
        let mut n = Netlist::new("toggle");
        let en = n.input("en");
        let q_ff = n.dff(en, "q");
        let d = n.and2(en, q_ff, "d");
        n.mark_output(d);
        assert!(n.finalize().is_ok());
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let w = n.wire("floating");
        let y = n.and2(a, w, "y");
        n.mark_output(y);
        let err = n.finalize().unwrap_err();
        assert!(matches!(err, BuildNetlistError::Undriven { .. }));
        assert!(err.to_string().contains("no driver"));
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.not(a, "y");
        n.gate_into(GateKind::Not, &[b], y); // second driver on y
        n.mark_output(y);
        let err = n.finalize().unwrap_err();
        assert!(matches!(err, BuildNetlistError::MultipleDrivers { .. }));
        assert!(err.to_string().contains("multiple drivers"));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn invalid_gate_arity_panics() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let _ = n.gate(GateKind::Not, &[a, a], "bad");
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn single_input_and_panics() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let _ = n.gate(GateKind::And, &[a], "bad");
    }
}
