//! BLIF interchange: read/write the Berkeley Logic Interchange Format.
//!
//! SIS — the tool the paper validated its macromodels with — speaks BLIF.
//! This module writes a [`Netlist`] as a `.model` with one `.names` cover
//! per gate (`.latch` per flip-flop) and parses the same subset back, so
//! reference netlists can be exchanged with classic logic-synthesis tools.
//!
//! Supported subset: single-output `.names` covers in the canonical shapes
//! this crate emits (BUF/NOT/AND/OR/NAND/NOR/XOR/XNOR), `.latch` with
//! rising-edge defaults, one `.model` per file.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::netlist::{BuildNetlistError, Gate, GateKind, NetId, Netlist};

/// Writes a finalized netlist as BLIF.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{one_hot_decoder, to_blif};
///
/// let dec = one_hot_decoder(4);
/// let blif = to_blif(&dec.netlist);
/// assert!(blif.starts_with(".model decoder4"));
/// assert!(blif.contains(".names"));
/// assert!(blif.ends_with(".end\n"));
/// ```
pub fn to_blif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let name = |id: NetId| netlist.net_name(id);
    let _ = writeln!(out, ".model {}", netlist.name());
    let inputs: Vec<&str> = netlist.inputs().iter().map(|&i| name(i)).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<&str> = netlist.outputs().iter().map(|&o| name(o)).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for ff in netlist.dffs() {
        let _ = writeln!(out, ".latch {} {} re clk 0", name(ff.d), name(ff.q));
    }
    for gate in netlist.gates() {
        let ins: Vec<&str> = gate.inputs.iter().map(|&i| name(i)).collect();
        let _ = writeln!(out, ".names {} {}", ins.join(" "), name(gate.output));
        out.push_str(&cover_for(gate));
    }
    out.push_str(".end\n");
    out
}

/// The canonical single-output cover for each gate kind.
fn cover_for(gate: &Gate) -> String {
    let n = gate.inputs.len();
    let mut out = String::new();
    match gate.kind {
        GateKind::Buf => out.push_str("1 1\n"),
        GateKind::Not => out.push_str("0 1\n"),
        GateKind::And => {
            let _ = writeln!(out, "{} 1", "1".repeat(n));
        }
        GateKind::Nor => {
            let _ = writeln!(out, "{} 1", "0".repeat(n));
        }
        GateKind::Or => {
            for i in 0..n {
                let mut row = vec!['-'; n];
                row[i] = '1';
                let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
            }
        }
        GateKind::Nand => {
            for i in 0..n {
                let mut row = vec!['-'; n];
                row[i] = '0';
                let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Full minterm expansion (our XORs are narrow).
            for m in 0..(1u32 << n) {
                let ones = m.count_ones() as usize;
                let want_odd = gate.kind == GateKind::Xor;
                if (ones % 2 == 1) == want_odd {
                    let row: String = (0..n)
                        .map(|b| if (m >> b) & 1 == 1 { '1' } else { '0' })
                        .collect();
                    let _ = writeln!(out, "{row} 1");
                }
            }
        }
    }
    out
}

/// Errors raised by [`from_blif`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line number (0 for end-of-file conditions).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBlifError {}

fn perr(line: usize, message: impl Into<String>) -> ParseBlifError {
    ParseBlifError {
        line,
        message: message.into(),
    }
}

/// Classifies a `.names` cover back into a gate kind.
fn classify_cover(
    n_inputs: usize,
    rows: &[String],
    line: usize,
) -> Result<GateKind, ParseBlifError> {
    let single = |pat: String| rows.len() == 1 && rows[0] == format!("{pat} 1");
    if n_inputs == 1 {
        if single("1".into()) {
            return Ok(GateKind::Buf);
        }
        if single("0".into()) {
            return Ok(GateKind::Not);
        }
        return Err(perr(line, "unrecognized single-input cover"));
    }
    if single("1".repeat(n_inputs)) {
        return Ok(GateKind::And);
    }
    if single("0".repeat(n_inputs)) {
        return Ok(GateKind::Nor);
    }
    let one_hot_rows = |val: char| -> bool {
        rows.len() == n_inputs
            && (0..n_inputs).all(|i| {
                let mut pat = vec!['-'; n_inputs];
                pat[i] = val;
                rows.contains(&format!("{} 1", pat.iter().collect::<String>()))
            })
    };
    if one_hot_rows('1') {
        return Ok(GateKind::Or);
    }
    if one_hot_rows('0') {
        return Ok(GateKind::Nand);
    }
    // XOR/XNOR: minterm rows with pure 0/1 patterns.
    let minterms: Option<Vec<u32>> = rows
        .iter()
        .map(|r| {
            let (pat, out) = r.split_once(' ')?;
            if out != "1" || pat.len() != n_inputs || !pat.chars().all(|c| c == '0' || c == '1') {
                return None;
            }
            Some(
                pat.chars()
                    .enumerate()
                    .fold(0u32, |acc, (b, c)| acc | (u32::from(c == '1') << b)),
            )
        })
        .collect();
    if let Some(ms) = minterms {
        let odd = ms.iter().all(|m| m.count_ones() % 2 == 1);
        let even = ms.iter().all(|m| m.count_ones() % 2 == 0);
        let expect = 1usize << (n_inputs - 1);
        if ms.len() == expect && odd {
            return Ok(GateKind::Xor);
        }
        if ms.len() == expect && even {
            return Ok(GateKind::Xnor);
        }
    }
    Err(perr(line, "cover is not in this crate's canonical shapes"))
}

/// Parses the BLIF subset written by [`to_blif`] back into a [`Netlist`].
///
/// # Errors
///
/// [`ParseBlifError`] for malformed or out-of-subset input;
/// the inner [`BuildNetlistError`] (wrapped into the message) if the
/// described netlist is structurally unsound.
///
/// # Examples
///
/// ```
/// use ahbpower_gate::{from_blif, to_blif, mux_tree};
///
/// let mux = mux_tree(4, 2);
/// let round = from_blif(&to_blif(&mux.netlist))?;
/// assert_eq!(round.stats(), mux.netlist.stats());
/// # Ok::<(), ahbpower_gate::ParseBlifError>(())
/// ```
pub fn from_blif(text: &str) -> Result<Netlist, ParseBlifError> {
    // First pass: gather statements (joining `\` continuations).
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let (content, continued) = match line.strip_suffix('\\') {
            Some(c) => (c.trim_end(), true),
            None => (line, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content.trim());
                if continued {
                    pending = Some((start, acc));
                } else {
                    statements.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.trim().to_string()));
                } else {
                    statements.push((line_no, content.trim().to_string()));
                }
            }
        }
    }
    if let Some((line, _)) = pending {
        return Err(perr(line, "dangling line continuation"));
    }

    let mut model_name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(usize, String, String)> = Vec::new();
    // (line, input names, output name, cover rows)
    let mut names: Vec<(usize, Vec<String>, String, Vec<String>)> = Vec::new();
    let mut saw_end = false;

    let mut i = 0;
    while i < statements.len() {
        let (line, stmt) = &statements[i];
        let mut toks = stmt.split_whitespace();
        let kw = toks.next().expect("statements are non-empty");
        match kw {
            ".model" => {
                model_name = toks.next().unwrap_or("blif").to_string();
            }
            ".inputs" => inputs.extend(toks.map(String::from)),
            ".outputs" => outputs.extend(toks.map(String::from)),
            ".latch" => {
                let d = toks
                    .next()
                    .ok_or_else(|| perr(*line, ".latch needs input"))?;
                let q = toks
                    .next()
                    .ok_or_else(|| perr(*line, ".latch needs output"))?;
                latches.push((*line, d.to_string(), q.to_string()));
            }
            ".names" => {
                let signals: Vec<String> = toks.map(String::from).collect();
                if signals.len() < 2 {
                    return Err(perr(*line, ".names needs inputs and an output"));
                }
                let (out_name, in_names) = signals.split_last().expect("checked length above");
                let mut rows = Vec::new();
                while i + 1 < statements.len() && !statements[i + 1].1.starts_with('.') {
                    i += 1;
                    rows.push(statements[i].1.clone());
                }
                names.push((*line, in_names.to_vec(), out_name.clone(), rows));
            }
            ".end" => {
                saw_end = true;
            }
            other => return Err(perr(*line, format!("unsupported statement `{other}`"))),
        }
        i += 1;
    }
    if !saw_end {
        return Err(perr(0, "missing .end"));
    }

    // Build the netlist: declare nets on first mention.
    let mut netlist = Netlist::new(&model_name);
    let mut nets: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        let id = netlist.input(name);
        nets.insert(name.clone(), id);
    }
    // Pre-declare every gate/latch output as a wire so references resolve
    // regardless of order; gates drive them via gate_into.
    for (_, _, q) in &latches {
        let id = netlist.wire(q);
        if nets.insert(q.clone(), id).is_some() {
            return Err(perr(0, format!("net `{q}` declared twice")));
        }
    }
    for (line, _, out_name, _) in &names {
        let id = netlist.wire(out_name);
        if nets.insert(out_name.clone(), id).is_some() {
            return Err(perr(*line, format!("net `{out_name}` driven twice")));
        }
    }
    fn resolve(netlist: &mut Netlist, nets: &mut HashMap<String, NetId>, name: &str) -> NetId {
        if let Some(id) = nets.get(name) {
            return *id;
        }
        let id = netlist.wire(name);
        nets.insert(name.to_string(), id);
        id
    }
    // Latches: the builder API creates q itself, so emulate via wire+gate is
    // not possible; instead re-declare through a buf? No — Netlist::dff
    // creates a fresh q net. To honour pre-declared names, route through
    // gate_into is unavailable for DFFs, so we instead create the DFF and
    // alias its q with a BUF onto the declared net.
    for (_, d, q) in &latches {
        let d_id = resolve(&mut netlist, &mut nets, d);
        let q_ff = netlist.dff(d_id, &format!("{q}__ff"));
        let q_id = nets[q];
        netlist.gate_into(GateKind::Buf, &[q_ff], q_id);
    }
    for (line, in_names, out_name, rows) in &names {
        let kind = classify_cover(in_names.len(), rows, *line)?;
        let in_ids: Vec<NetId> = in_names
            .iter()
            .map(|n| resolve(&mut netlist, &mut nets, n))
            .collect();
        let out_id = nets[out_name];
        netlist.gate_into(kind, &in_ids, out_id);
    }
    for name in &outputs {
        let id = resolve(&mut netlist, &mut nets, name);
        netlist.mark_output(id);
    }
    netlist
        .finalize()
        .map_err(|e: BuildNetlistError| perr(0, format!("unsound netlist: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::LogicSim;
    use crate::synth::{mux_tree, one_hot_decoder, priority_arbiter};

    #[test]
    fn decoder_round_trips_and_behaves_identically() {
        let dec = one_hot_decoder(8);
        let blif = to_blif(&dec.netlist);
        let back = from_blif(&blif).unwrap();
        // Same interface sizes.
        assert_eq!(back.inputs().len(), dec.netlist.inputs().len());
        assert_eq!(back.outputs().len(), dec.netlist.outputs().len());
        // Behavioural equivalence over the whole input space.
        let mut a = LogicSim::new(&dec.netlist);
        let mut b = LogicSim::new(&back);
        let a_in: Vec<_> = dec.netlist.inputs().to_vec();
        let b_in: Vec<_> = back.inputs().to_vec();
        for code in 0..8u64 {
            a.set_bus(&a_in, code);
            a.settle();
            b.set_bus(&b_in, code);
            b.settle();
            let av = a.bus_value(dec.netlist.outputs());
            let bv = b.bus_value(back.outputs());
            assert_eq!(av, bv, "code {code}");
        }
    }

    #[test]
    fn mux_round_trips_structurally() {
        let mux = mux_tree(6, 3);
        let back = from_blif(&to_blif(&mux.netlist)).unwrap();
        assert_eq!(back.stats(), mux.netlist.stats());
    }

    #[test]
    fn arbiter_latches_survive_round_trip() {
        let arb = priority_arbiter(3);
        let blif = to_blif(&arb.netlist);
        assert!(blif.contains(".latch"));
        let back = from_blif(&blif).unwrap();
        assert_eq!(back.dffs().len(), arb.netlist.dffs().len());
        // The BUF aliases add one gate per latch.
        assert_eq!(
            back.stats().gates,
            arb.netlist.stats().gates + arb.netlist.dffs().len()
        );
        // Behaviour: registered grant still follows priority.
        let mut sim = LogicSim::new(&back);
        let req: Vec<_> = back.inputs().to_vec();
        sim.set_bus(&req, 0b110);
        sim.step();
        let grants: Vec<_> = back.outputs().to_vec();
        assert_eq!(sim.bus_value(&grants), 0b010);
    }

    #[test]
    fn xor_cover_round_trips() {
        let mut n = Netlist::new("x");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.gate(GateKind::Xor, &[a, b, c], "y");
        let z = n.gate(GateKind::Xnor, &[a, b], "z");
        n.mark_output(y);
        n.mark_output(z);
        let n = n.finalize().unwrap();
        let back = from_blif(&to_blif(&n)).unwrap();
        assert_eq!(back.gates()[0].kind, GateKind::Xor);
        assert_eq!(back.gates()[1].kind, GateKind::Xnor);
    }

    #[test]
    fn parse_errors_are_located() {
        let e = from_blif(".model m\n.inputs a\n.frob x\n.end\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unsupported"));
        let e = from_blif(".model m\n.inputs a\n.names a\n1 1\n.end\n").unwrap_err();
        assert!(e.message.contains("inputs and an output"));
        let e =
            from_blif(".model m\n.inputs a b\n.names a b y\n10 1\n01 1\n11 1\n.end\n").unwrap_err();
        assert!(e.message.contains("canonical"));
        let e = from_blif(".model m\n.inputs a\n.names a y\n1 1\n").unwrap_err();
        assert!(e.message.contains(".end"));
    }

    #[test]
    fn double_driver_rejected() {
        let text = ".model m\n.inputs a\n.names a y\n1 1\n.names a y\n0 1\n.outputs y\n.end\n";
        let e = from_blif(text).unwrap_err();
        assert!(e.message.contains("driven twice"), "{e}");
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model m\n.inputs a \\\n b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let n = from_blif(text).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.gates()[0].kind, GateKind::And);
    }
}
