//! Property-based tests of the gate-level substrate.

use ahbpower_gate::{
    check_equivalence, from_blif, mux_tree, one_hot_decoder, priority_arbiter, switching_energy,
    to_blif, GateKind, LogicSim, Netlist, TechParams,
};
use proptest::prelude::*;

/// A random combinational netlist description: `(n_inputs, gate plan)` where
/// each gate picks a kind and input indices from the nets created so far.
fn arb_netlist_plan() -> impl Strategy<Value = (usize, Vec<(u8, u16, u16, u16)>)> {
    (
        2usize..6,
        prop::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()),
            1..15,
        ),
    )
}

fn build_from_plan(n_inputs: usize, plan: &[(u8, u16, u16, u16)]) -> Netlist {
    let kinds = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let mut n = Netlist::new("random");
    let mut nets = n.input_bus("x", n_inputs);
    for (gi, (k, a, b, c)) in plan.iter().enumerate() {
        let kind = kinds[*k as usize % kinds.len()];
        let pick = |sel: u16, nets: &[ahbpower_gate::NetId]| nets[sel as usize % nets.len()];
        let out = match kind {
            GateKind::Buf | GateKind::Not => n.gate(kind, &[pick(*a, &nets)], &format!("g{gi}")),
            _ => {
                // 2 or 3 inputs depending on the third selector's parity.
                if c % 2 == 0 {
                    n.gate(kind, &[pick(*a, &nets), pick(*b, &nets)], &format!("g{gi}"))
                } else {
                    n.gate(
                        kind,
                        &[pick(*a, &nets), pick(*b, &nets), pick(*c, &nets)],
                        &format!("g{gi}"),
                    )
                }
            }
        };
        nets.push(out);
    }
    let last = *nets.last().expect("at least the inputs exist");
    n.mark_output(last);
    n.finalize().expect("plan-built netlists are acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The decoder output is one-hot and matches the input code for every
    /// size and code, including after arbitrary code sequences.
    #[test]
    fn decoder_tracks_any_code_sequence(
        n_out in 2usize..17,
        codes in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let dec = one_hot_decoder(n_out);
        let mut sim = LogicSim::new(&dec.netlist);
        for c in codes {
            let code = c % n_out as u64;
            sim.set_bus(&dec.addr, code);
            sim.settle();
            prop_assert_eq!(sim.bus_value(&dec.outputs), 1u64 << code);
        }
    }

    /// The mux always outputs the selected channel's data.
    #[test]
    fn mux_outputs_selected_channel(
        width in 1usize..33,
        n in 2usize..7,
        data in prop::collection::vec(any::<u64>(), 6),
        sel in any::<usize>(),
    ) {
        let mux = mux_tree(width, n);
        let mut sim = LogicSim::new(&mux.netlist);
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        for (j, bits) in mux.data.iter().enumerate() {
            sim.set_bus(bits, data[j % data.len()] & mask);
        }
        let ch = sel % n;
        sim.set_bus(&mux.sel, ch as u64);
        sim.settle();
        prop_assert_eq!(sim.bus_value(&mux.outputs), data[ch % data.len()] & mask);
    }

    /// The arbiter always produces a one-hot grant and honours priority.
    #[test]
    fn arbiter_priority_invariant(
        n in 2usize..9,
        reqs in prop::collection::vec(any::<u16>(), 1..20),
    ) {
        let arb = priority_arbiter(n);
        let mut sim = LogicSim::new(&arb.netlist);
        for r in reqs {
            let pattern = u64::from(r) & ((1 << n) - 1);
            sim.set_bus(&arb.req, pattern);
            sim.step();
            let grant = sim.bus_value(&arb.grant);
            prop_assert_eq!(grant.count_ones(), 1);
            if pattern != 0 {
                let winner = pattern.trailing_zeros();
                prop_assert_eq!(grant, 1 << winner, "req {:b}", pattern);
            } else {
                prop_assert_eq!(grant, 1, "default master");
            }
        }
    }

    /// Applying a vector twice in a row never adds activity; toggles are
    /// reversible (returning to a previous vector costs the same).
    #[test]
    fn activity_is_change_driven(
        width in 2usize..16,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mut n = Netlist::new("xor_reduce");
        let ins = n.input_bus("x", width);
        let y = n.gate(GateKind::Xor, &ins, "y");
        n.mark_output(y);
        let n = n.finalize().expect("sound");
        let ins: Vec<_> = n.inputs().to_vec();
        let mut sim = LogicSim::new(&n);
        sim.set_bus(&ins, a);
        sim.settle();
        sim.reset_counters();
        sim.set_bus(&ins, a);
        sim.settle();
        prop_assert_eq!(sim.total_toggles(), 0, "no change, no activity");
        sim.set_bus(&ins, b);
        sim.settle();
        let forward = sim.total_toggles();
        sim.reset_counters();
        sim.set_bus(&ins, a);
        sim.settle();
        let back = sim.total_toggles();
        prop_assert_eq!(forward, back, "a->b and b->a toggle the same nets");
    }

    /// Energy equals (toggle count) x (per-toggle energy) for single-node
    /// netlists, for any tech parameters.
    #[test]
    fn energy_scales_with_toggles(
        vdd in 0.5f64..5.0,
        c in 1e-15f64..1e-12,
        flips in 1usize..30,
    ) {
        let mut n = Netlist::new("inv");
        let a = n.input("a");
        let y = n.not(a, "y");
        n.mark_output(y);
        let n = n.finalize().expect("sound");
        let a = n.inputs()[0];
        let mut sim = LogicSim::new(&n);
        for i in 0..flips {
            sim.set_input(a, i % 2 == 0);
            sim.settle();
        }
        let tech = TechParams { vdd, c_internal: c, c_output: c };
        let e = switching_energy(&sim, &tech);
        let expect = flips as f64 * c * vdd * vdd / 4.0;
        prop_assert!((e - expect).abs() < 1e-9 * expect, "{e} vs {expect}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random combinational netlist survives a BLIF round-trip with its
    /// boolean function provably intact.
    #[test]
    fn blif_round_trip_preserves_function((n_inputs, plan) in arb_netlist_plan()) {
        let original = build_from_plan(n_inputs, &plan);
        let blif = to_blif(&original);
        let parsed = from_blif(&blif)
            .map_err(|e| TestCaseError::fail(format!("parse: {e}\n{blif}")))?;
        check_equivalence(&original, &parsed)
            .map_err(|e| TestCaseError::fail(format!("equivalence: {e}\n{blif}")))?;
    }
}

#[test]
fn decoder_gate_count_grows_linearly_with_outputs() {
    let g4 = one_hot_decoder(4).netlist.stats().gates;
    let g8 = one_hot_decoder(8).netlist.stats().gates;
    let g16 = one_hot_decoder(16).netlist.stats().gates;
    assert!(g8 > g4 && g16 > g8);
    // AND-chain construction: roughly n_out * (n_in - 1) + n_in gates.
    assert_eq!(g16, 16 * 3 + 4);
}
