//! Composite scenarios for the extension experiments.

use ahbpower_ahb::{
    AddressMap, AhbBus, AhbBusBuilder, Arbitration, HBurst, IdleMaster, MasterId, MemorySlave, Op,
    ScriptedMaster,
};

use crate::error::WorkloadError;
use crate::gen::{try_cpu_script, try_dma_script, try_stream_script};

/// An SoC-flavoured scenario: a CPU-like master, a DMA engine and a
/// streaming producer contending for three memory slaves — the kind of
/// architecture-exploration setup the paper motivates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocScenario {
    /// Workload seed.
    pub seed: u64,
    /// CPU accesses.
    pub cpu_accesses: u32,
    /// DMA blocks.
    pub dma_blocks: u32,
    /// Stream frames.
    pub stream_frames: u32,
    /// Wait states of the memory slaves.
    pub wait_states: u32,
    /// Arbitration policy.
    pub arbitration: Arbitration,
}

impl Default for SocScenario {
    fn default() -> Self {
        SocScenario {
            seed: 7,
            cpu_accesses: 200,
            dma_blocks: 24,
            stream_frames: 32,
            wait_states: 1,
            arbitration: Arbitration::FixedPriority,
        }
    }
}

impl SocScenario {
    /// Masters on the bus (CPU, DMA, stream, default).
    pub const N_MASTERS: usize = 4;
    /// Slaves on the bus.
    pub const N_SLAVES: usize = 3;
    /// Bytes per slave window.
    pub const WINDOW: u32 = 0x4000;

    /// The address map the scenario decodes against.
    pub fn address_map(&self) -> AddressMap {
        AddressMap::evenly_spaced(Self::N_SLAVES, Self::WINDOW)
    }

    /// The op scripts of the three traffic masters, in master order
    /// (CPU, DMA, stream). Static analyzers lint these without a bus.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Gen`] if any generator rejects the
    /// scenario's parameters.
    pub fn scripts(&self) -> Result<Vec<Vec<Op>>, WorkloadError> {
        let w = Self::WINDOW;
        let cpu = try_cpu_script(self.seed, self.cpu_accesses, 0, w)?;
        let dma = try_dma_script(
            self.seed ^ 0xD0A,
            self.dma_blocks,
            w,     // source: slave 1
            2 * w, // destination: slave 2
            HBurst::Incr8,
        )?;
        let stream = try_stream_script(self.seed ^ 0x57E, self.stream_frames, 2 * w + 0x2000, 6)?;
        Ok(vec![cpu, dma, stream])
    }

    /// Builds the bus.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if script generation or the bus build
    /// rejects the configuration (cannot occur for the default config).
    pub fn build(&self) -> Result<AhbBus, WorkloadError> {
        let w = Self::WINDOW;
        let mut scripts = self.scripts()?.into_iter();
        let cpu = ScriptedMaster::new(scripts.next().unwrap_or_default());
        let dma = ScriptedMaster::new(scripts.next().unwrap_or_default());
        let stream = ScriptedMaster::new(scripts.next().unwrap_or_default());
        let bus = AhbBusBuilder::new(self.address_map())
            .arbitration(self.arbitration)
            .default_master(MasterId(3))
            .master(Box::new(cpu))
            .master(Box::new(dma))
            .master(Box::new(stream))
            .master(Box::new(IdleMaster::new()))
            .slave(Box::new(MemorySlave::new(w as usize, self.wait_states, 0)))
            .slave(Box::new(MemorySlave::new(w as usize, self.wait_states, 0)))
            .slave(Box::new(MemorySlave::new(w as usize, self.wait_states, 0)))
            .build()?;
        Ok(bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::ProtocolChecker;

    #[test]
    fn soc_scenario_runs_clean_under_checker() {
        let sc = SocScenario::default();
        let mut bus = sc.build().unwrap();
        let mut checker = ProtocolChecker::new();
        let mut cycles = 0u64;
        while cycles < 100_000 && !bus.all_masters_done() {
            checker.check(bus.step());
            cycles += 1;
        }
        assert!(bus.all_masters_done(), "scenario did not finish");
        assert!(
            checker.violations().is_empty(),
            "violations: {:?}",
            &checker.violations()[..checker.violations().len().min(5)]
        );
        assert!(bus.stats().transfers_ok > 500);
    }

    #[test]
    fn round_robin_spreads_grants() {
        let sc = SocScenario {
            arbitration: Arbitration::RoundRobin,
            ..SocScenario::default()
        };
        let mut bus = sc.build().unwrap();
        bus.run_until_done(100_000);
        let counts = bus.arbiter().grant_counts();
        // The three traffic masters all got the bus.
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn wait_states_slow_the_scenario_down() {
        let fast = SocScenario {
            wait_states: 0,
            ..SocScenario::default()
        };
        let slow = SocScenario {
            wait_states: 3,
            ..SocScenario::default()
        };
        let mut bus_fast = fast.build().unwrap();
        let mut bus_slow = slow.build().unwrap();
        let n_fast = bus_fast.run_until_done(200_000);
        let n_slow = bus_slow.run_until_done(200_000);
        assert!(n_slow > n_fast, "{n_slow} vs {n_fast}");
        assert_eq!(
            bus_fast.stats().transfers_ok,
            bus_slow.stats().transfers_ok,
            "same work, different duration"
        );
    }
}
