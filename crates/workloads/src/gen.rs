//! Op-script generators for the different traffic classes.
//!
//! Every generator returns [`Result`], so malformed scenario parameters
//! surface as [`GenError`]s a caller can report (or convert into
//! [`crate::WorkloadError`]) instead of aborting the process.

use std::error::Error;
use std::fmt;

use ahbpower_ahb::{HBurst, HSize, Op};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Why a script generator rejected its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A count parameter (rounds, repeats, blocks, accesses, frames) was
    /// zero; the field names what was missing.
    EmptyCount(&'static str),
    /// The address span cannot hold a single word access.
    AddrSpanTooSmall {
        /// The offending span, bytes.
        span: u32,
    },
    /// The idle range has `max < min`.
    InvertedIdleRange {
        /// Minimum idle cycles requested.
        min: u32,
        /// Maximum idle cycles requested.
        max: u32,
    },
    /// A generated script contained an op the scenario does not allow
    /// (reported by shape validators).
    UnexpectedOp(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::EmptyCount(what) => write!(f, "need at least one {what}"),
            GenError::AddrSpanTooSmall { span } => {
                write!(f, "address span must hold a word (got {span} bytes)")
            }
            GenError::InvertedIdleRange { min, max } => {
                write!(f, "idle range is inverted ({min}..={max})")
            }
            GenError::UnexpectedOp(op) => write!(f, "unexpected op {op}"),
        }
    }
}

impl Error for GenError {}

/// The paper's testbench script for one traffic master:
/// "WRITE-READ non-interruptible sequences and IDLE commands, for a random
/// number of times; only in this period a bus handover can occur."
///
/// Each round performs `1..=max_repeat` locked WRITE-READ pairs at random
/// addresses inside `[addr_base, addr_base + addr_span)`, then idles for
/// `idle_min..=idle_max` cycles (releasing the bus).
///
/// # Errors
///
/// Returns [`GenError`] if `rounds == 0`, `max_repeat == 0`,
/// `addr_span < 4`, or `idle_max < idle_min`.
///
/// # Examples
///
/// ```
/// use ahbpower_workloads::try_write_read_script;
///
/// let ops = try_write_read_script(42, 5, 3, 0x0, 0x3000, 2, 6)?;
/// assert!(!ops.is_empty());
/// assert!(try_write_read_script(42, 0, 3, 0x0, 0x3000, 2, 6).is_err());
/// # Ok::<(), ahbpower_workloads::GenError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn try_write_read_script(
    seed: u64,
    rounds: u32,
    max_repeat: u32,
    addr_base: u32,
    addr_span: u32,
    idle_min: u32,
    idle_max: u32,
) -> Result<Vec<Op>, GenError> {
    if rounds == 0 {
        return Err(GenError::EmptyCount("round"));
    }
    if max_repeat == 0 {
        return Err(GenError::EmptyCount("repeat"));
    }
    if addr_span < 4 {
        return Err(GenError::AddrSpanTooSmall { span: addr_span });
    }
    if idle_max < idle_min {
        return Err(GenError::InvertedIdleRange {
            min: idle_min,
            max: idle_max,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for _ in 0..rounds {
        let repeats = rng.random_range(1..=max_repeat);
        for _ in 0..repeats {
            let addr = addr_base + (rng.random_range(0..addr_span / 4)) * 4;
            let value: u32 = rng.random();
            ops.push(Op::Locked(vec![Op::write(addr, value), Op::read(addr)]));
        }
        ops.push(Op::Idle(rng.random_range(idle_min..=idle_max)));
    }
    Ok(ops)
}

/// A DMA-style script: block copies as INCR bursts (read burst from source,
/// write burst to destination), separated by short idle gaps.
///
/// # Errors
///
/// Returns [`GenError::EmptyCount`] if `blocks == 0`.
pub fn try_dma_script(
    seed: u64,
    blocks: u32,
    src_base: u32,
    dst_base: u32,
    burst: HBurst,
) -> Result<Vec<Op>, GenError> {
    if blocks == 0 {
        return Err(GenError::EmptyCount("block"));
    }
    let beats = burst.beats().unwrap_or(8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for b in 0..blocks {
        let off = b * beats as u32 * 4;
        ops.push(Op::Burst {
            write: false,
            burst,
            addr: src_base + off,
            data: vec![0; beats],
            size: HSize::Word,
            busy_between: 0,
        });
        let data: Vec<u32> = (0..beats).map(|_| rng.random()).collect();
        ops.push(Op::Burst {
            write: true,
            burst,
            addr: dst_base + off,
            data,
            size: HSize::Word,
            busy_between: 0,
        });
        ops.push(Op::Idle(rng.random_range(1..4)));
    }
    Ok(ops)
}

/// A CPU-like script: mostly single reads with occasional writes, mixed
/// transfer sizes, and idle gaps mimicking cache hits.
///
/// # Errors
///
/// Returns [`GenError`] if `accesses == 0` or `addr_span < 4`.
pub fn try_cpu_script(
    seed: u64,
    accesses: u32,
    addr_base: u32,
    addr_span: u32,
) -> Result<Vec<Op>, GenError> {
    if accesses == 0 {
        return Err(GenError::EmptyCount("access"));
    }
    if addr_span < 4 {
        return Err(GenError::AddrSpanTooSmall { span: addr_span });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for _ in 0..accesses {
        let size = match rng.random_range(0..4u8) {
            0 => HSize::Byte,
            1 => HSize::Half,
            _ => HSize::Word,
        };
        let align = size.bytes();
        let addr = addr_base + (rng.random_range(0..addr_span / align)) * align;
        if rng.random_bool(0.3) {
            let mask = match size {
                HSize::Byte => 0xFF,
                HSize::Half => 0xFFFF,
                HSize::Word => 0xFFFF_FFFF,
            };
            ops.push(Op::Write {
                addr,
                value: rng.random::<u32>() & mask,
                size,
            });
        } else {
            ops.push(Op::Read { addr, size });
        }
        if rng.random_bool(0.5) {
            ops.push(Op::Idle(rng.random_range(1..8)));
        }
    }
    Ok(ops)
}

/// A streaming script: periodic fixed-length write bursts (a producer
/// pushing frames), with BUSY pauses inside bursts to model source jitter.
///
/// # Errors
///
/// Returns [`GenError::EmptyCount`] if `frames == 0`.
pub fn try_stream_script(
    seed: u64,
    frames: u32,
    dst_base: u32,
    period_idle: u32,
) -> Result<Vec<Op>, GenError> {
    if frames == 0 {
        return Err(GenError::EmptyCount("frame"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for f in 0..frames {
        let data: Vec<u32> = (0..8).map(|_| rng.random()).collect();
        ops.push(Op::Burst {
            write: true,
            burst: HBurst::Incr8,
            addr: dst_base + (f % 16) * 32,
            data,
            size: HSize::Word,
            busy_between: u32::from(rng.random_bool(0.25)),
        });
        ops.push(Op::Idle(period_idle));
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_script_is_deterministic_per_seed() {
        let a = try_write_read_script(7, 4, 3, 0, 0x1000, 1, 5).unwrap();
        let b = try_write_read_script(7, 4, 3, 0, 0x1000, 1, 5).unwrap();
        let c = try_write_read_script(8, 4, 3, 0, 0x1000, 1, 5).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_read_script_shape() {
        let ops = try_write_read_script(1, 3, 2, 0x100, 0x200, 2, 4).unwrap();
        let mut shape_errors: Vec<GenError> = Vec::new();
        // Each round ends with an Idle; pairs are Locked.
        let idles = ops.iter().filter(|o| matches!(o, Op::Idle(_))).count();
        assert_eq!(idles, 3);
        for op in &ops {
            match op {
                Op::Locked(inner) => {
                    assert_eq!(inner.len(), 2);
                    assert!(matches!(inner[0], Op::Write { .. }));
                    assert!(matches!(inner[1], Op::Read { .. }));
                    if let (Op::Write { addr: wa, .. }, Op::Read { addr: ra, .. }) =
                        (&inner[0], &inner[1])
                    {
                        assert_eq!(wa, ra, "read back the written address");
                        assert!(*wa >= 0x100 && *wa < 0x300);
                    }
                }
                Op::Idle(n) => assert!((2..=4).contains(n)),
                other => shape_errors.push(GenError::UnexpectedOp(format!("{other:?}"))),
            }
        }
        assert_eq!(shape_errors, Vec::new());
    }

    #[test]
    fn dma_script_alternates_read_write_bursts() {
        let ops = try_dma_script(3, 2, 0x0, 0x1000, HBurst::Incr8).unwrap();
        assert!(matches!(
            ops[0],
            Op::Burst {
                write: false,
                addr: 0x0,
                ..
            }
        ));
        assert!(matches!(
            ops[1],
            Op::Burst {
                write: true,
                addr: 0x1000,
                ..
            }
        ));
        if let Op::Burst { data, .. } = &ops[1] {
            assert_eq!(data.len(), 8);
        }
    }

    #[test]
    fn cpu_script_addresses_are_aligned() {
        let ops = try_cpu_script(11, 200, 0x2000, 0x800).unwrap();
        let mut shape_errors: Vec<GenError> = Vec::new();
        for op in &ops {
            match op {
                Op::Read { addr, size } | Op::Write { addr, size, .. } => {
                    assert_eq!(addr % size.bytes(), 0, "{addr:#x} {size}");
                    assert!(*addr >= 0x2000 && *addr < 0x2800);
                }
                Op::Idle(_) => {}
                other => shape_errors.push(GenError::UnexpectedOp(format!("{other:?}"))),
            }
        }
        assert_eq!(shape_errors, Vec::new());
    }

    #[test]
    fn stream_script_emits_bursts() {
        let ops = try_stream_script(5, 4, 0x0, 10).unwrap();
        let bursts = ops
            .iter()
            .filter(|o| matches!(o, Op::Burst { write: true, .. }))
            .count();
        assert_eq!(bursts, 4);
    }

    #[test]
    fn inverted_idle_range_rejected() {
        assert!(matches!(
            try_write_read_script(1, 1, 1, 0, 0x100, 5, 2),
            Err(GenError::InvertedIdleRange { min: 5, max: 2 })
        ));
    }

    #[test]
    fn try_variants_surface_errors_instead_of_aborting() {
        assert_eq!(
            try_write_read_script(1, 0, 1, 0, 0x100, 1, 2),
            Err(GenError::EmptyCount("round"))
        );
        assert_eq!(
            try_write_read_script(1, 1, 1, 0, 2, 1, 2),
            Err(GenError::AddrSpanTooSmall { span: 2 })
        );
        let e = try_write_read_script(1, 1, 1, 0, 0x100, 5, 2).unwrap_err();
        assert_eq!(e, GenError::InvertedIdleRange { min: 5, max: 2 });
        assert!(e.to_string().contains("idle range"));
        assert_eq!(
            try_dma_script(1, 0, 0, 0, HBurst::Incr8),
            Err(GenError::EmptyCount("block"))
        );
        assert_eq!(
            try_cpu_script(1, 0, 0, 0x100),
            Err(GenError::EmptyCount("access"))
        );
        assert_eq!(
            try_stream_script(1, 0, 0, 1),
            Err(GenError::EmptyCount("frame"))
        );
        // Valid parameters succeed and are deterministic per seed.
        assert_eq!(
            try_write_read_script(7, 4, 3, 0, 0x1000, 1, 5).unwrap(),
            try_write_read_script(7, 4, 3, 0, 0x1000, 1, 5).unwrap()
        );
    }
}
