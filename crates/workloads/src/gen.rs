//! Op-script generators for the different traffic classes.

use ahbpower_ahb::{HBurst, HSize, Op};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's testbench script for one traffic master:
/// "WRITE-READ non-interruptible sequences and IDLE commands, for a random
/// number of times; only in this period a bus handover can occur."
///
/// Each round performs `1..=max_repeat` locked WRITE-READ pairs at random
/// addresses inside `[addr_base, addr_base + addr_span)`, then idles for
/// `idle_min..=idle_max` cycles (releasing the bus).
///
/// # Panics
///
/// Panics if `rounds == 0`, `max_repeat == 0`, `addr_span < 4`, or
/// `idle_max < idle_min`.
///
/// # Examples
///
/// ```
/// use ahbpower_workloads::write_read_script;
///
/// let ops = write_read_script(42, 5, 3, 0x0, 0x3000, 2, 6);
/// assert!(!ops.is_empty());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn write_read_script(
    seed: u64,
    rounds: u32,
    max_repeat: u32,
    addr_base: u32,
    addr_span: u32,
    idle_min: u32,
    idle_max: u32,
) -> Vec<Op> {
    assert!(rounds > 0, "need at least one round");
    assert!(max_repeat > 0, "need at least one repeat");
    assert!(addr_span >= 4, "address span must hold a word");
    assert!(idle_max >= idle_min, "idle range is inverted");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for _ in 0..rounds {
        let repeats = rng.random_range(1..=max_repeat);
        for _ in 0..repeats {
            let addr = addr_base + (rng.random_range(0..addr_span / 4)) * 4;
            let value: u32 = rng.random();
            ops.push(Op::Locked(vec![Op::write(addr, value), Op::read(addr)]));
        }
        ops.push(Op::Idle(rng.random_range(idle_min..=idle_max)));
    }
    ops
}

/// A DMA-style script: block copies as INCR bursts (read burst from source,
/// write burst to destination), separated by short idle gaps.
///
/// # Panics
///
/// Panics if `blocks == 0`.
pub fn dma_script(seed: u64, blocks: u32, src_base: u32, dst_base: u32, burst: HBurst) -> Vec<Op> {
    assert!(blocks > 0, "need at least one block");
    let beats = burst.beats().unwrap_or(8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for b in 0..blocks {
        let off = b * beats as u32 * 4;
        ops.push(Op::Burst {
            write: false,
            burst,
            addr: src_base + off,
            data: vec![0; beats],
            size: HSize::Word,
            busy_between: 0,
        });
        let data: Vec<u32> = (0..beats).map(|_| rng.random()).collect();
        ops.push(Op::Burst {
            write: true,
            burst,
            addr: dst_base + off,
            data,
            size: HSize::Word,
            busy_between: 0,
        });
        ops.push(Op::Idle(rng.random_range(1..4)));
    }
    ops
}

/// A CPU-like script: mostly single reads with occasional writes, mixed
/// transfer sizes, and idle gaps mimicking cache hits.
///
/// # Panics
///
/// Panics if `accesses == 0` or `addr_span < 4`.
pub fn cpu_script(seed: u64, accesses: u32, addr_base: u32, addr_span: u32) -> Vec<Op> {
    assert!(accesses > 0, "need at least one access");
    assert!(addr_span >= 4, "address span must hold a word");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for _ in 0..accesses {
        let size = match rng.random_range(0..4u8) {
            0 => HSize::Byte,
            1 => HSize::Half,
            _ => HSize::Word,
        };
        let align = size.bytes();
        let addr = addr_base + (rng.random_range(0..addr_span / align)) * align;
        if rng.random_bool(0.3) {
            let mask = match size {
                HSize::Byte => 0xFF,
                HSize::Half => 0xFFFF,
                HSize::Word => 0xFFFF_FFFF,
            };
            ops.push(Op::Write {
                addr,
                value: rng.random::<u32>() & mask,
                size,
            });
        } else {
            ops.push(Op::Read { addr, size });
        }
        if rng.random_bool(0.5) {
            ops.push(Op::Idle(rng.random_range(1..8)));
        }
    }
    ops
}

/// A streaming script: periodic fixed-length write bursts (a producer
/// pushing frames), with BUSY pauses inside bursts to model source jitter.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn stream_script(seed: u64, frames: u32, dst_base: u32, period_idle: u32) -> Vec<Op> {
    assert!(frames > 0, "need at least one frame");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for f in 0..frames {
        let data: Vec<u32> = (0..8).map(|_| rng.random()).collect();
        ops.push(Op::Burst {
            write: true,
            burst: HBurst::Incr8,
            addr: dst_base + (f % 16) * 32,
            data,
            size: HSize::Word,
            busy_between: u32::from(rng.random_bool(0.25)),
        });
        ops.push(Op::Idle(period_idle));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_script_is_deterministic_per_seed() {
        let a = write_read_script(7, 4, 3, 0, 0x1000, 1, 5);
        let b = write_read_script(7, 4, 3, 0, 0x1000, 1, 5);
        let c = write_read_script(8, 4, 3, 0, 0x1000, 1, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_read_script_shape() {
        let ops = write_read_script(1, 3, 2, 0x100, 0x200, 2, 4);
        // Each round ends with an Idle; pairs are Locked.
        let idles = ops.iter().filter(|o| matches!(o, Op::Idle(_))).count();
        assert_eq!(idles, 3);
        for op in &ops {
            match op {
                Op::Locked(inner) => {
                    assert_eq!(inner.len(), 2);
                    assert!(matches!(inner[0], Op::Write { .. }));
                    assert!(matches!(inner[1], Op::Read { .. }));
                    if let (Op::Write { addr: wa, .. }, Op::Read { addr: ra, .. }) =
                        (&inner[0], &inner[1])
                    {
                        assert_eq!(wa, ra, "read back the written address");
                        assert!(*wa >= 0x100 && *wa < 0x300);
                    }
                }
                Op::Idle(n) => assert!((2..=4).contains(n)),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn dma_script_alternates_read_write_bursts() {
        let ops = dma_script(3, 2, 0x0, 0x1000, HBurst::Incr8);
        assert!(matches!(
            ops[0],
            Op::Burst { write: false, addr: 0x0, .. }
        ));
        assert!(matches!(
            ops[1],
            Op::Burst { write: true, addr: 0x1000, .. }
        ));
        if let Op::Burst { data, .. } = &ops[1] {
            assert_eq!(data.len(), 8);
        }
    }

    #[test]
    fn cpu_script_addresses_are_aligned() {
        let ops = cpu_script(11, 200, 0x2000, 0x800);
        for op in &ops {
            match op {
                Op::Read { addr, size } | Op::Write { addr, size, .. } => {
                    assert_eq!(addr % size.bytes(), 0, "{addr:#x} {size}");
                    assert!(*addr >= 0x2000 && *addr < 0x2800);
                }
                Op::Idle(_) => {}
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn stream_script_emits_bursts() {
        let ops = stream_script(5, 4, 0x0, 10);
        let bursts = ops
            .iter()
            .filter(|o| matches!(o, Op::Burst { write: true, .. }))
            .count();
        assert_eq!(bursts, 4);
    }

    #[test]
    #[should_panic(expected = "idle range")]
    fn inverted_idle_range_panics() {
        let _ = write_read_script(1, 1, 1, 0, 0x100, 5, 2);
    }
}
