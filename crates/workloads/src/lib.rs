//! # ahbpower-workloads — traffic generators for the AHB experiments
//!
//! - [`PaperTestbench`]: the DATE'03 evaluation setup — two masters running
//!   non-interruptible WRITE-READ sequences with random idle gaps, a simple
//!   default master, three memory slaves;
//! - [`SocScenario`]: a CPU + DMA + streaming-producer mix for the
//!   architecture-exploration extension experiments;
//! - [`try_write_read_script`], [`try_dma_script`], [`try_cpu_script`],
//!   [`try_stream_script`]: the underlying seedable op generators.
//!
//! ```
//! use ahbpower_workloads::PaperTestbench;
//!
//! let mut bus = PaperTestbench::default().build()?;
//! bus.run(1_000);
//! assert!(bus.stats().transfers_ok > 0);
//! # Ok::<(), ahbpower_workloads::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gen;
mod paper;
mod scenario;

pub use error::WorkloadError;
pub use gen::{try_cpu_script, try_dma_script, try_stream_script, try_write_read_script, GenError};
pub use paper::PaperTestbench;
pub use scenario::SocScenario;
