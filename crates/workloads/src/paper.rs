//! The DATE'03 testbench: two traffic masters + a default master, three
//! memory slaves on the AHB.

use ahbpower_ahb::{
    AddressMap, AhbBus, AhbBusBuilder, Arbitration, IdleMaster, MasterId, MemorySlave, Op,
    ScriptedMaster,
};

use crate::error::WorkloadError;
use crate::gen::try_write_read_script;

/// Configuration of the paper's testbench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaperTestbench {
    /// Workload seed (each master derives its own stream from it).
    pub seed: u64,
    /// WRITE-READ/IDLE rounds per master.
    pub rounds: u32,
    /// Maximum WRITE-READ repeats per round ("a random number of times").
    pub max_repeat: u32,
    /// Minimum idle cycles between rounds.
    pub idle_min: u32,
    /// Maximum idle cycles between rounds.
    pub idle_max: u32,
    /// Bytes per slave window (three slaves, evenly spaced).
    pub window: u32,
    /// Wait states of the memory slaves on first beats.
    pub wait_first: u32,
    /// Arbitration policy.
    pub arbitration: Arbitration,
}

impl Default for PaperTestbench {
    fn default() -> Self {
        PaperTestbench {
            seed: 2003,
            rounds: 64,
            max_repeat: 8,
            idle_min: 4,
            idle_max: 24,
            window: 0x1000,
            wait_first: 0,
            arbitration: Arbitration::FixedPriority,
        }
    }
}

impl PaperTestbench {
    /// Number of masters on the bus (two traffic masters + default master).
    pub const N_MASTERS: usize = 3;
    /// Number of slaves on the bus.
    pub const N_SLAVES: usize = 3;
    /// Scenario label stamped into telemetry exports of this testbench.
    pub const LABEL: &'static str = "paper_testbench";

    /// The address map the testbench decodes against (three evenly spaced
    /// slave windows).
    pub fn address_map(&self) -> AddressMap {
        AddressMap::evenly_spaced(Self::N_SLAVES, self.window)
    }

    /// The op scripts the traffic masters will run, in master order.
    ///
    /// Static analyzers use this to lint the workload without building (or
    /// ticking) a bus.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Gen`] if the configured script parameters
    /// are rejected by the generator.
    pub fn scripts(&self) -> Result<Vec<Vec<Op>>, WorkloadError> {
        let span = self.window * Self::N_SLAVES as u32;
        let s0 = try_write_read_script(
            self.seed,
            self.rounds,
            self.max_repeat,
            0,
            span,
            self.idle_min,
            self.idle_max,
        )?;
        let s1 = try_write_read_script(
            self.seed ^ 0x9E37_79B9_7F4A_7C15,
            self.rounds,
            self.max_repeat,
            0,
            span,
            self.idle_min,
            self.idle_max,
        )?;
        Ok(vec![s0, s1])
    }

    /// Builds the bus: masters 0 and 1 run WRITE-READ/IDLE scripts over the
    /// three slave windows; master 2 is the "simple default master".
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if script generation or the bus build
    /// rejects the configuration (cannot occur for the default config).
    pub fn build(&self) -> Result<AhbBus, WorkloadError> {
        let mut scripts = self.scripts()?.into_iter();
        let m0 = ScriptedMaster::new(scripts.next().unwrap_or_default());
        let m1 = ScriptedMaster::new(scripts.next().unwrap_or_default());
        let bus = AhbBusBuilder::new(self.address_map())
            .arbitration(self.arbitration)
            .default_master(MasterId(2))
            .master(Box::new(m0))
            .master(Box::new(m1))
            .master(Box::new(IdleMaster::new()))
            .slave(Box::new(MemorySlave::new(
                self.window as usize,
                self.wait_first,
                0,
            )))
            .slave(Box::new(MemorySlave::new(
                self.window as usize,
                self.wait_first,
                0,
            )))
            .slave(Box::new(MemorySlave::new(
                self.window as usize,
                self.wait_first,
                0,
            )))
            .build()?;
        Ok(bus)
    }

    /// A variant whose masters loop long enough for `cycles`-cycle
    /// experiments (rounds scaled so the scripts do not run dry).
    pub fn sized_for(cycles: u64, seed: u64) -> Self {
        // A WRITE-READ pair occupies ~4-6 cycles plus idle gaps; ~30 cycles
        // per round is a safe lower bound for sizing.
        let rounds = (cycles / 20).clamp(8, u64::from(u32::MAX)) as u32;
        PaperTestbench {
            seed,
            rounds,
            ..PaperTestbench::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{ProtocolChecker, ScriptedMaster};

    #[test]
    fn testbench_builds_and_runs_clean() {
        let tb = PaperTestbench::default();
        let mut bus = tb.build().unwrap();
        let mut checker = ProtocolChecker::new();
        for _ in 0..5_000 {
            checker.check(bus.step());
            if bus.all_masters_done() {
                break;
            }
        }
        assert!(
            checker.violations().is_empty(),
            "protocol violations: {:?}",
            &checker.violations()[..checker.violations().len().min(5)]
        );
        assert!(bus.stats().transfers_ok > 100);
        assert!(bus.stats().handovers > 10, "handover traffic expected");
    }

    #[test]
    fn both_traffic_masters_make_progress() {
        let tb = PaperTestbench {
            rounds: 16,
            ..PaperTestbench::default()
        };
        let mut bus = tb.build().unwrap();
        bus.run_until_done(50_000);
        assert!(bus.all_masters_done());
        for i in 0..2 {
            let m = bus.master_as::<ScriptedMaster>(i).unwrap();
            assert!(m.completed() > 0, "master {i} idle");
            assert_eq!(m.errors(), 0);
            // Every read must return the value just written (locked pairs).
            for (_, _) in m.reads() {}
        }
    }

    #[test]
    fn locked_pairs_read_back_written_values() {
        let tb = PaperTestbench {
            rounds: 8,
            ..PaperTestbench::default()
        };
        let mut bus = tb.build().unwrap();
        bus.run_until_done(20_000);
        // Because pairs are locked (non-interruptible), no other master can
        // slip a write in between: read always returns the written value.
        // Verify via the masters' scripts by re-deriving them.
        let m0 = bus.master_as::<ScriptedMaster>(0).unwrap();
        let reads0: Vec<(u32, u32)> = m0.reads().collect();
        assert!(!reads0.is_empty());
        let script = crate::gen::try_write_read_script(2003, 8, 8, 0, 0x3000, 2, 10).unwrap();
        let mut expected = Vec::new();
        for op in script {
            if let ahbpower_ahb::Op::Locked(inner) = op {
                if let ahbpower_ahb::Op::Write { addr, value, .. } = inner[0] {
                    expected.push((addr, value));
                }
            }
        }
        assert_eq!(reads0, expected, "locked WRITE-READ pairs round-trip");
    }

    #[test]
    fn sized_for_scales_rounds() {
        let small = PaperTestbench::sized_for(1_000, 1);
        let large = PaperTestbench::sized_for(1_000_000, 1);
        assert!(large.rounds > small.rounds);
    }

    #[test]
    fn round_robin_variant_also_clean() {
        let tb = PaperTestbench {
            arbitration: Arbitration::RoundRobin,
            rounds: 16,
            ..PaperTestbench::default()
        };
        let mut bus = tb.build().unwrap();
        let mut checker = ProtocolChecker::new();
        for _ in 0..10_000 {
            checker.check(bus.step());
            if bus.all_masters_done() {
                break;
            }
        }
        assert!(checker.violations().is_empty());
    }
}
