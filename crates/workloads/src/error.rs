//! The crate's unified error type.

use std::error::Error;
use std::fmt;

use ahbpower_ahb::BuildBusError;

use crate::gen::GenError;

/// Why a scenario could not be built: either its script parameters were
/// rejected by a generator, or the assembled bus failed to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A traffic generator rejected the scenario's parameters.
    Gen(GenError),
    /// The bus fabric rejected the assembled configuration.
    Bus(BuildBusError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Gen(e) => write!(f, "workload generation: {e}"),
            WorkloadError::Bus(e) => write!(f, "bus build: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Gen(e) => Some(e),
            WorkloadError::Bus(e) => Some(e),
        }
    }
}

impl From<GenError> for WorkloadError {
    fn from(e: GenError) -> Self {
        WorkloadError::Gen(e)
    }
}

impl From<BuildBusError> for WorkloadError {
    fn from(e: BuildBusError) -> Self {
        WorkloadError::Bus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let g = WorkloadError::from(GenError::EmptyCount("round"));
        assert!(g.to_string().contains("round"));
        assert!(Error::source(&g).is_some());
    }
}
