//! A small text format for master transaction scripts — trace-driven
//! stimulus in the spirit of instruction-based IP evaluation (Givargis et
//! al., the paper's ref. [4]).
//!
//! ## Format
//!
//! One op per line; `#` starts a comment. Addresses and data are hex
//! (optional `0x`), sizes are `b`/`h`/`w` (default `w`).
//!
//! ```text
//! # write then read back
//! write 0x100 deadbeef w
//! read  0x100
//! idle  5
//! burst w incr4 0x200 11 22 33 44
//! burst r wrap8 0x240
//! lock
//!   write 0x300 1
//!   read  0x300
//! endlock
//! ```

use std::error::Error;
use std::fmt;

use crate::master::Op;
use crate::types::{HBurst, HSize};

/// Errors produced by [`parse_ops`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseOpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseOpsError {}

fn err(line: usize, message: impl Into<String>) -> ParseOpsError {
    ParseOpsError {
        line,
        message: message.into(),
    }
}

fn parse_hex(tok: &str, line: usize) -> Result<u32, ParseOpsError> {
    let t = tok.strip_prefix("0x").unwrap_or(tok);
    u32::from_str_radix(t, 16).map_err(|_| err(line, format!("bad hex value `{tok}`")))
}

fn parse_size(tok: Option<&str>, line: usize) -> Result<HSize, ParseOpsError> {
    match tok {
        None | Some("w") => Ok(HSize::Word),
        Some("h") => Ok(HSize::Half),
        Some("b") => Ok(HSize::Byte),
        Some(other) => Err(err(line, format!("bad size `{other}` (use b/h/w)"))),
    }
}

fn parse_burst_kind(tok: &str, line: usize) -> Result<HBurst, ParseOpsError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "single" => HBurst::Single,
        "incr" => HBurst::Incr,
        "incr4" => HBurst::Incr4,
        "incr8" => HBurst::Incr8,
        "incr16" => HBurst::Incr16,
        "wrap4" => HBurst::Wrap4,
        "wrap8" => HBurst::Wrap8,
        "wrap16" => HBurst::Wrap16,
        other => return Err(err(line, format!("bad burst kind `{other}`"))),
    })
}

/// Parses the text format into a list of [`Op`]s.
///
/// # Errors
///
/// Returns a [`ParseOpsError`] with the offending line for malformed input
/// (unknown keyword, bad hex, unbalanced `lock`/`endlock`, …).
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{parse_ops, Op};
///
/// let ops = parse_ops("write 0x10 ff\nread 0x10\nidle 3\n")?;
/// assert_eq!(ops[0], Op::write(0x10, 0xFF));
/// assert_eq!(ops[2], Op::Idle(3));
/// # Ok::<(), ahbpower_ahb::ParseOpsError>(())
/// ```
pub fn parse_ops(text: &str) -> Result<Vec<Op>, ParseOpsError> {
    let mut out: Vec<Op> = Vec::new();
    // Stack of pending locked groups (supports nesting).
    let mut lock_stack: Vec<Vec<Op>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let kw = toks.next().expect("non-empty line has a token");
        let op = match kw.to_ascii_lowercase().as_str() {
            "idle" => {
                let n = toks
                    .next()
                    .ok_or_else(|| err(line_no, "idle needs a cycle count"))?
                    .parse::<u32>()
                    .map_err(|_| err(line_no, "bad idle cycle count"))?;
                Some(Op::Idle(n))
            }
            "write" => {
                let addr = parse_hex(
                    toks.next()
                        .ok_or_else(|| err(line_no, "write needs addr"))?,
                    line_no,
                )?;
                let value = parse_hex(
                    toks.next()
                        .ok_or_else(|| err(line_no, "write needs a value"))?,
                    line_no,
                )?;
                let size = parse_size(toks.next(), line_no)?;
                Some(Op::Write { addr, value, size })
            }
            "read" => {
                let addr = parse_hex(
                    toks.next().ok_or_else(|| err(line_no, "read needs addr"))?,
                    line_no,
                )?;
                let size = parse_size(toks.next(), line_no)?;
                Some(Op::Read { addr, size })
            }
            "burst" => {
                let dir = toks.next().ok_or_else(|| err(line_no, "burst needs r|w"))?;
                let write = match dir {
                    "w" => true,
                    "r" => false,
                    other => return Err(err(line_no, format!("bad burst direction `{other}`"))),
                };
                let burst = parse_burst_kind(
                    toks.next()
                        .ok_or_else(|| err(line_no, "burst needs a kind"))?,
                    line_no,
                )?;
                let addr = parse_hex(
                    toks.next()
                        .ok_or_else(|| err(line_no, "burst needs addr"))?,
                    line_no,
                )?;
                let data: Vec<u32> = toks
                    .map(|t| parse_hex(t, line_no))
                    .collect::<Result<_, _>>()?;
                let beats = burst.beats();
                let data = if write {
                    if let Some(n) = beats {
                        if data.len() != n {
                            return Err(err(
                                line_no,
                                format!(
                                    "{burst} write burst needs {n} data words, got {}",
                                    data.len()
                                ),
                            ));
                        }
                    } else if data.is_empty() {
                        return Err(err(line_no, "write burst needs data"));
                    }
                    data
                } else {
                    // Reads: data tokens are forbidden; length comes from
                    // the kind (INCR reads default to 4 beats).
                    if !data.is_empty() {
                        return Err(err(line_no, "read burst takes no data"));
                    }
                    vec![0; beats.unwrap_or(4)]
                };
                Some(Op::Burst {
                    write,
                    burst,
                    addr,
                    data,
                    size: HSize::Word,
                    busy_between: 0,
                })
            }
            "lock" => {
                lock_stack.push(Vec::new());
                None
            }
            "endlock" => {
                let inner = lock_stack
                    .pop()
                    .ok_or_else(|| err(line_no, "endlock without lock"))?;
                Some(Op::Locked(inner))
            }
            other => return Err(err(line_no, format!("unknown keyword `{other}`"))),
        };
        if let Some(op) = op {
            match lock_stack.last_mut() {
                Some(group) => group.push(op),
                None => out.push(op),
            }
        }
    }
    if !lock_stack.is_empty() {
        return Err(err(text.lines().count(), "unterminated lock block"));
    }
    Ok(out)
}

/// Renders ops back to the text format ([`parse_ops`]'s inverse for
/// everything the format can express).
pub fn format_ops(ops: &[Op]) -> String {
    let mut out = String::new();
    fn push(out: &mut String, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        match op {
            Op::Idle(n) => out.push_str(&format!("{pad}idle {n}\n")),
            Op::Write { addr, value, size } => {
                out.push_str(&format!(
                    "{pad}write 0x{addr:x} 0x{value:x} {}\n",
                    size_ch(*size)
                ));
            }
            Op::Read { addr, size } => {
                out.push_str(&format!("{pad}read 0x{addr:x} {}\n", size_ch(*size)));
            }
            Op::Burst {
                write,
                burst,
                addr,
                data,
                ..
            } => {
                let dir = if *write { "w" } else { "r" };
                let kind = burst.to_string().to_ascii_lowercase();
                out.push_str(&format!("{pad}burst {dir} {kind} 0x{addr:x}"));
                if *write {
                    for d in data {
                        out.push_str(&format!(" 0x{d:x}"));
                    }
                }
                out.push('\n');
            }
            Op::Locked(inner) => {
                out.push_str(&format!("{pad}lock\n"));
                for o in inner {
                    push(out, o, indent + 1);
                }
                out.push_str(&format!("{pad}endlock\n"));
            }
        }
    }
    fn size_ch(s: HSize) -> char {
        match s {
            HSize::Byte => 'b',
            HSize::Half => 'h',
            HSize::Word => 'w',
        }
    }
    for op in ops {
        push(&mut out, op, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_op_kinds() {
        let text = "\
# comment line
write 0x100 deadbeef
read 100 h
idle 7

burst w incr4 0x200 1 2 3 4
burst r wrap8 0x240
lock
  write 0x300 1 b
  read 0x300 b
endlock
";
        let ops = parse_ops(text).unwrap();
        assert_eq!(ops.len(), 6);
        assert_eq!(ops[0], Op::write(0x100, 0xDEAD_BEEF));
        assert_eq!(
            ops[1],
            Op::Read {
                addr: 0x100,
                size: HSize::Half
            }
        );
        assert_eq!(ops[2], Op::Idle(7));
        assert!(matches!(
            &ops[3],
            Op::Burst { write: true, burst: HBurst::Incr4, data, .. } if data == &vec![1, 2, 3, 4]
        ));
        assert!(matches!(
            &ops[4],
            Op::Burst { write: false, burst: HBurst::Wrap8, data, .. } if data.len() == 8
        ));
        assert!(matches!(&ops[5], Op::Locked(inner) if inner.len() == 2));
    }

    #[test]
    fn round_trips_through_format() {
        let text = "write 0x10 0xff w\nlock\n  read 0x10 w\n  write 0x14 0x1 h\nendlock\nburst w wrap4 0x20 0x1 0x2 0x3 0x4\nidle 2\n";
        let ops = parse_ops(text).unwrap();
        let rendered = format_ops(&ops);
        let reparsed = parse_ops(&rendered).unwrap();
        assert_eq!(ops, reparsed);
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse_ops("write 0x10\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("value"));
        let e = parse_ops("read zz\n").unwrap_err();
        assert!(e.message.contains("bad hex"));
        let e = parse_ops("frobnicate 1\n").unwrap_err();
        assert!(e.message.contains("unknown keyword"));
        let e = parse_ops("idle\n").unwrap_err();
        assert!(e.message.contains("cycle count"));
        let e = parse_ops("write 1 2 q\n").unwrap_err();
        assert!(e.message.contains("bad size"));
    }

    #[test]
    fn lock_must_balance() {
        assert!(parse_ops("lock\nwrite 0 1\n")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse_ops("endlock\n")
            .unwrap_err()
            .message
            .contains("without lock"));
    }

    #[test]
    fn burst_data_arity_checked() {
        let e = parse_ops("burst w incr4 0 1 2\n").unwrap_err();
        assert!(e.message.contains("needs 4 data words"));
        let e = parse_ops("burst r incr4 0 1\n").unwrap_err();
        assert!(e.message.contains("takes no data"));
        let e = parse_ops("burst w incr 0\n").unwrap_err();
        assert!(e.message.contains("needs data"));
        let e = parse_ops("burst x incr4 0 1 2 3 4\n").unwrap_err();
        assert!(e.message.contains("direction"));
    }

    #[test]
    fn parsed_script_drives_a_master() {
        use crate::bus::AhbBusBuilder;
        use crate::decoder::AddressMap;
        use crate::master::ScriptedMaster;
        use crate::slave::MemorySlave;
        let ops = parse_ops("write 0x40 0xabcd\nread 0x40\n").unwrap();
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        bus.run_until_done(50);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.reads().next(), Some((0x40, 0xABCD)));
    }

    #[test]
    fn nested_locks_parse() {
        let ops = parse_ops("lock\nwrite 0 1\nlock\nread 0\nendlock\nendlock\n").unwrap();
        assert!(matches!(&ops[0], Op::Locked(inner)
            if matches!(&inner[1], Op::Locked(_))));
    }
}
