//! An AHB-to-AHB bridge: hierarchical bus systems.
//!
//! Complex SoCs split traffic across bus segments so that slow peripherals
//! do not stall the high-performance segment. [`AhbToAhbBridge`] is an AHB
//! slave that owns a complete downstream [`AhbBus`]; upstream transfers are
//! re-issued on the downstream segment by an internal port master, with the
//! upstream side held in wait states until the downstream transfer
//! completes. Both segments remain fully observable (each has its own
//! snapshots), so power analysis can run per segment.

use std::cell::RefCell;
use std::rc::Rc;

use crate::bus::AhbBus;
use crate::lane::{from_lanes, to_lanes};
use crate::master::AhbMaster;
use crate::slave::AhbSlave;
use crate::types::{AddressPhase, HBurst, HResp, HSize, HTrans, MasterIn, MasterOut, SlaveReply};

/// A request travelling through the bridge's port.
#[derive(Debug, Clone, Copy)]
struct PortRequest {
    addr: u32,
    write: bool,
    size: HSize,
    wdata: u32,
}

/// Completion of a port request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortResult {
    Okay(u32),
    Failed,
}

#[derive(Debug, Default)]
struct PortState {
    request: Option<PortRequest>,
    result: Option<PortResult>,
}

/// The bridge's master on the downstream bus.
struct PortMaster {
    state: Rc<RefCell<PortState>>,
    /// Request currently in its address phase.
    ap: Option<PortRequest>,
    /// Request currently in its data phase.
    dp: Option<PortRequest>,
    last_out: MasterOut,
}

impl PortMaster {
    fn new(state: Rc<RefCell<PortState>>) -> Self {
        PortMaster {
            state,
            ap: None,
            dp: None,
            last_out: MasterOut::default(),
        }
    }
}

impl AhbMaster for PortMaster {
    fn cycle(&mut self, input: &MasterIn) -> MasterOut {
        let mut st = self.state.borrow_mut();
        if input.ready {
            if let Some(req) = self.dp.take() {
                let result = match input.resp {
                    HResp::Okay => PortResult::Okay(from_lanes(input.rdata, req.addr, req.size)),
                    // The bridge maps any downstream failure to an upstream
                    // ERROR (it cannot replay splits across segments).
                    _ => PortResult::Failed,
                };
                st.result = Some(result);
            }
            self.dp = self.ap.take();
        } else if matches!(input.resp, HResp::Retry | HResp::Split) {
            // Downstream retry: give up and report failure upstream.
            if self.dp.take().is_some() {
                st.result = Some(PortResult::Failed);
            }
            self.ap = None;
            let mut out = MasterOut {
                busreq: st.request.is_some(),
                ..MasterOut::default()
            };
            self.drive_wdata(&mut out);
            self.last_out = out;
            return out;
        } else {
            // Plain wait state: hold.
            return self.last_out;
        }
        let mut out = MasterOut {
            busreq: st.request.is_some(),
            ..MasterOut::default()
        };
        if input.grant {
            if let Some(req) = st.request.take() {
                out.trans = HTrans::NonSeq;
                out.addr = req.addr;
                out.write = req.write;
                out.size = req.size;
                out.burst = HBurst::Single;
                self.ap = Some(req);
            }
        }
        drop(st);
        self.drive_wdata(&mut out);
        self.last_out = out;
        out
    }

    fn name(&self) -> &str {
        "bridge-port"
    }
}

impl PortMaster {
    fn drive_wdata(&self, out: &mut MasterOut) {
        if let Some(req) = self.dp {
            if req.write {
                out.wdata = to_lanes(req.wdata, req.addr, req.size);
            }
        }
    }
}

/// Bridge FSM on the upstream side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BridgeState {
    Idle,
    /// Waiting for the downstream transfer to finish.
    Forwarding,
}

/// An AHB slave that forwards transfers onto a downstream [`AhbBus`].
///
/// Build the downstream bus with [`crate::AhbBusBuilder`], reserving master
/// 0 for the bridge by passing the master returned from
/// [`AhbToAhbBridge::port_master`].
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, AhbToAhbBridge, MemorySlave, Op,
///                    ScriptedMaster};
///
/// let (port, handle) = AhbToAhbBridge::port_master();
/// let downstream = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
///     .master(port)
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let bridge = AhbToAhbBridge::new(downstream, handle);
/// let mut system = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x20, 7), Op::read(0x20)])))
///     .slave(Box::new(bridge))
///     .build()?;
/// system.run_until_done(100);
/// let m = system.master_as::<ScriptedMaster>(0).expect("scripted");
/// assert_eq!(m.reads().next(), Some((0x20, 7)));
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
pub struct AhbToAhbBridge {
    downstream: AhbBus,
    port: Rc<RefCell<PortState>>,
    state: BridgeState,
    pending: Option<AddressPhase>,
    /// The transfer currently being forwarded (for upstream lane placement).
    inflight: Option<AddressPhase>,
    /// Downstream cycles per upstream cycle (clock ratio).
    steps_per_tick: u32,
    /// Mask applied to upstream addresses before re-issuing downstream.
    addr_mask: u32,
    forwarded: u64,
    failed: u64,
}

/// Opaque handle linking a port master to its bridge.
pub struct PortHandle(Rc<RefCell<PortState>>);

impl AhbToAhbBridge {
    /// Creates the downstream port master and its handle. Attach the master
    /// to the downstream bus (conventionally as master 0), then pass the
    /// handle to [`AhbToAhbBridge::new`].
    pub fn port_master() -> (Box<dyn AhbMaster>, PortHandle) {
        let state = Rc::new(RefCell::new(PortState::default()));
        (
            Box::new(PortMaster::new(Rc::clone(&state))),
            PortHandle(state),
        )
    }

    /// Assembles the bridge around its downstream bus.
    pub fn new(downstream: AhbBus, handle: PortHandle) -> Self {
        AhbToAhbBridge {
            downstream,
            port: handle.0,
            state: BridgeState::Idle,
            pending: None,
            inflight: None,
            steps_per_tick: 1,
            addr_mask: u32::MAX,
            forwarded: 0,
            failed: 0,
        }
    }

    /// Localizes upstream addresses into a `window`-byte downstream space
    /// (power of two): the downstream map then starts at zero regardless of
    /// where the bridge sits upstream.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, not a power of two, or smaller than a
    /// word.
    pub fn with_window(mut self, window: u32) -> Self {
        assert!(
            window >= 4 && window.is_power_of_two(),
            "window must be a power of two of at least 4 bytes"
        );
        self.addr_mask = window - 1;
        self
    }

    /// Sets the downstream:upstream clock ratio (downstream cycles per
    /// upstream cycle).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn with_clock_ratio(mut self, ratio: u32) -> Self {
        assert!(ratio > 0, "clock ratio must be positive");
        self.steps_per_tick = ratio;
        self
    }

    /// The downstream bus (snapshots, statistics, typed slave access).
    pub fn downstream(&self) -> &AhbBus {
        &self.downstream
    }

    /// Mutable access to the downstream bus.
    pub fn downstream_mut(&mut self) -> &mut AhbBus {
        &mut self.downstream
    }

    /// Transfers successfully forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Transfers that failed downstream (reported upstream as ERROR).
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

impl std::fmt::Debug for AhbToAhbBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AhbToAhbBridge")
            .field("state", &self.state)
            .field("forwarded", &self.forwarded)
            .field("failed", &self.failed)
            .finish()
    }
}

impl AhbSlave for AhbToAhbBridge {
    fn address_phase(&mut self, phase: &AddressPhase) {
        self.pending = Some(*phase);
    }

    fn data_phase(&mut self, wdata: u32) -> SlaveReply {
        match self.state {
            BridgeState::Idle => match self.pending.take() {
                Some(phase) => {
                    self.port.borrow_mut().request = Some(PortRequest {
                        addr: phase.addr & self.addr_mask,
                        write: phase.write,
                        size: phase.size,
                        wdata: from_lanes(wdata, phase.addr, phase.size),
                    });
                    self.port.borrow_mut().result = None;
                    self.inflight = Some(phase);
                    self.state = BridgeState::Forwarding;
                    SlaveReply::Wait
                }
                None => SlaveReply::Done { rdata: 0 },
            },
            BridgeState::Forwarding => {
                let result = self.port.borrow_mut().result.take();
                match result {
                    Some(PortResult::Okay(value)) => {
                        self.state = BridgeState::Idle;
                        self.forwarded += 1;
                        let phase = self.inflight.take().expect("forwarding has a phase");
                        SlaveReply::Done {
                            rdata: to_lanes(value, phase.addr, phase.size),
                        }
                    }
                    Some(PortResult::Failed) => {
                        self.state = BridgeState::Idle;
                        self.inflight = None;
                        self.failed += 1;
                        SlaveReply::Error
                    }
                    None => SlaveReply::Wait,
                }
            }
        }
    }

    fn tick(&mut self) {
        for _ in 0..self.steps_per_tick {
            self.downstream.step();
        }
    }

    fn reset(&mut self) {
        self.state = BridgeState::Idle;
        self.pending = None;
        self.inflight = None;
        self.port.borrow_mut().request = None;
        self.port.borrow_mut().result = None;
        self.downstream.reset();
    }

    fn name(&self) -> &str {
        "ahb-ahb-bridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::AhbBusBuilder;
    use crate::decoder::AddressMap;
    use crate::master::{Op, ScriptedMaster};
    use crate::slave::{ErrorSlave, MemorySlave};

    fn system(downstream_waits: u32, ops: Vec<Op>) -> AhbBus {
        let (port, handle) = AhbToAhbBridge::port_master();
        let downstream = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(port)
            .slave(Box::new(MemorySlave::new(0x1000, downstream_waits, 0)))
            .build()
            .unwrap();
        let bridge = AhbToAhbBridge::new(downstream, handle).with_window(0x1000);
        AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(bridge)) // bridge window at 0x1000
            .build()
            .unwrap()
    }

    #[test]
    fn write_read_round_trips_across_segments() {
        let mut bus = system(0, vec![Op::write(0x1040, 0xBEEF), Op::read(0x1040)]);
        let n = bus.run_until_done(200);
        assert!(n < 200, "bridge transfer completes");
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.reads().next(), Some((0x1040, 0xBEEF)));
        let bridge = bus.slave_as::<AhbToAhbBridge>(1).unwrap();
        assert_eq!(bridge.forwarded(), 2);
        assert_eq!(bridge.failed(), 0);
        // The value really lives in the downstream memory.
        let mem = bridge
            .downstream()
            .slave_as::<MemorySlave>(0)
            .expect("downstream memory");
        assert_eq!(mem.peek_word(0x40), 0xBEEF);
    }

    #[test]
    fn bridge_adds_latency_but_not_errors() {
        let mut direct = system(0, vec![Op::write(0x40, 1)]); // slave 0: direct
        let n_direct = direct.run_until_done(100);
        let mut bridged = system(0, vec![Op::write(0x1040, 1)]); // via bridge
        let n_bridged = bridged.run_until_done(100);
        assert!(
            n_bridged > n_direct,
            "bridge costs cycles: {n_bridged} vs {n_direct}"
        );
        assert_eq!(bridged.stats().errors, 0);
        assert!(bridged.stats().wait_cycles > 0);
    }

    #[test]
    fn downstream_waits_propagate_upstream() {
        let mut fast = system(0, vec![Op::read(0x1000)]);
        let mut slow = system(3, vec![Op::read(0x1000)]);
        let n_fast = fast.run_until_done(100);
        let n_slow = slow.run_until_done(100);
        assert!(n_slow > n_fast, "{n_slow} vs {n_fast}");
    }

    #[test]
    fn clock_ratio_speeds_up_downstream() {
        let build = |ratio: u32| {
            let (port, handle) = AhbToAhbBridge::port_master();
            let downstream = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
                .master(port)
                .slave(Box::new(MemorySlave::new(0x1000, 2, 0)))
                .build()
                .unwrap();
            let bridge = AhbToAhbBridge::new(downstream, handle).with_clock_ratio(ratio);
            AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
                .master(Box::new(ScriptedMaster::new(vec![
                    Op::write(0x10, 1),
                    Op::read(0x10),
                ])))
                .slave(Box::new(bridge))
                .build()
                .unwrap()
        };
        let mut slow = build(1);
        let mut fast = build(4);
        let n_slow = slow.run_until_done(200);
        let n_fast = fast.run_until_done(200);
        assert!(n_fast < n_slow, "{n_fast} vs {n_slow}");
    }

    #[test]
    fn downstream_error_surfaces_as_upstream_error() {
        let (port, handle) = AhbToAhbBridge::port_master();
        let downstream = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(port)
            .slave(Box::new(ErrorSlave::new()))
            .build()
            .unwrap();
        let bridge = AhbToAhbBridge::new(downstream, handle);
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![Op::read(0x0)])))
            .slave(Box::new(bridge))
            .build()
            .unwrap();
        bus.run_until_done(100);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.errors(), 1);
        assert_eq!(m.completed(), 0);
        let bridge = bus.slave_as::<AhbToAhbBridge>(0).unwrap();
        assert_eq!(bridge.failed(), 1);
    }

    #[test]
    fn byte_transfers_cross_the_bridge() {
        let mut bus = system(
            0,
            vec![
                Op::Write {
                    addr: 0x1001,
                    value: 0xAB,
                    size: HSize::Byte,
                },
                Op::Read {
                    addr: 0x1001,
                    size: HSize::Byte,
                },
            ],
        );
        bus.run_until_done(200);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.reads().next(), Some((0x1001, 0xAB)));
    }
}
