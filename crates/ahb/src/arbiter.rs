//! The bus arbiter: HBUSREQx/HLOCKx → HGRANTx, with SPLIT masking.

use std::fmt;

use crate::types::MasterId;

/// Arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Master 0 has the highest priority, master N-1 the lowest.
    #[default]
    FixedPriority,
    /// Rotating priority: after each grant the winner moves to the back.
    RoundRobin,
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arbitration::FixedPriority => f.write_str("fixed-priority"),
            Arbitration::RoundRobin => f.write_str("round-robin"),
        }
    }
}

/// The AHB arbiter state machine.
///
/// The fabric calls [`Arbiter::decide`] whenever the bus can change hands
/// (HREADY high); [`Arbiter::mask_split`] when a slave answers SPLIT; and
/// [`Arbiter::unmask`] with each cycle's HSPLIT bits.
///
/// Requests and SPLIT state travel as packed little-endian bitmask words
/// (bit `i` = master `i`), matching [`crate::BusSnapshot`], so the per-cycle
/// decision is a few bit operations.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{Arbiter, Arbitration, MasterId};
///
/// let mut arb = Arbiter::new(3, Arbitration::FixedPriority, MasterId(0));
/// let g = arb.decide(0b110, MasterId(0), false);
/// assert_eq!(g, MasterId(1)); // lowest requesting index wins
/// let g = arb.decide(0b000, g, false);
/// assert_eq!(g, MasterId(0)); // default master when nobody requests
/// ```
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: Arbitration,
    default_master: MasterId,
    n_masters: usize,
    /// Bit `i` set = master `i` has an outstanding SPLIT and must not be
    /// granted.
    split_mask: u32,
    /// Round-robin scan start.
    rr_next: usize,
    /// Grant decisions made (for statistics / fairness tests).
    grants: Vec<u64>,
}

impl Arbiter {
    /// Creates an arbiter for `n_masters` masters.
    ///
    /// # Panics
    ///
    /// Panics if `n_masters == 0`, `n_masters > 32` (the packed request
    /// word is 32 bits wide) or `default_master` is out of range.
    pub fn new(n_masters: usize, policy: Arbitration, default_master: MasterId) -> Self {
        assert!(n_masters > 0, "need at least one master");
        assert!(n_masters <= 32, "at most 32 masters fit the request word");
        assert!(
            default_master.index() < n_masters,
            "default master out of range"
        );
        Arbiter {
            policy,
            default_master,
            n_masters,
            split_mask: 0,
            rr_next: 0,
            grants: vec![0; n_masters],
        }
    }

    /// Number of masters.
    pub fn n_masters(&self) -> usize {
        self.n_masters
    }

    /// The configured arbitration policy.
    pub fn policy(&self) -> Arbitration {
        self.policy
    }

    /// The configured default master.
    pub fn default_master(&self) -> MasterId {
        self.default_master
    }

    /// Chooses the next address-phase owner. `requests` is the packed
    /// HBUSREQ word (bit `i` = master `i`).
    ///
    /// `owner_lock` is the current owner's HLOCK: a locked owner keeps the
    /// bus regardless of other requests (the paper's "non-interruptible
    /// WRITE-READ sequences").
    ///
    /// # Panics
    ///
    /// Panics if `requests` has a bit set at or above the master count.
    pub fn decide(&mut self, requests: u32, owner: MasterId, owner_lock: bool) -> MasterId {
        let width_mask = width_mask(self.n_masters);
        assert_eq!(requests & !width_mask, 0, "request width");
        if owner_lock && !self.is_masked(owner) {
            self.grants[owner.index()] += 1;
            return owner;
        }
        let grantable = requests & !self.split_mask;
        let winner = match self.policy {
            Arbitration::FixedPriority => {
                if grantable != 0 {
                    Some(MasterId(grantable.trailing_zeros() as u8))
                } else {
                    None
                }
            }
            Arbitration::RoundRobin => {
                let n = self.n_masters;
                let found = (0..n)
                    .map(|k| (self.rr_next + k) % n)
                    .find(|&i| (grantable >> i) & 1 == 1);
                if let Some(i) = found {
                    self.rr_next = (i + 1) % n;
                }
                found.map(|i| MasterId(i as u8))
            }
        };
        let g = winner.unwrap_or(self.default_master);
        self.grants[g.index()] += 1;
        g
    }

    /// Records a SPLIT response: `master` must not be granted until the
    /// slave signals completion via [`Arbiter::unmask`].
    pub fn mask_split(&mut self, master: MasterId) {
        self.split_mask |= 1 << master.index();
    }

    /// Applies an HSPLIT bit vector (bit *i* set = master *i* may be granted
    /// again).
    pub fn unmask(&mut self, hsplit: u16) {
        self.split_mask &= !u32::from(hsplit);
    }

    /// True if `master` currently has an outstanding SPLIT.
    pub fn is_masked(&self, master: MasterId) -> bool {
        (self.split_mask >> master.index()) & 1 == 1
    }

    /// Grant counts per master since construction.
    pub fn grant_counts(&self) -> &[u64] {
        &self.grants
    }

    /// The packed SPLIT mask word (bit `i` = master `i` is masked).
    pub fn split_mask(&self) -> u32 {
        self.split_mask
    }

    /// Forces the SPLIT mask word, for exhaustive state-space
    /// enumeration by the analyzer's `verify` pass.
    ///
    /// # Panics
    ///
    /// Panics if a bit at or above the master count is set.
    pub fn set_split_mask(&mut self, mask: u32) {
        assert_eq!(mask & !width_mask(self.n_masters), 0, "split mask width");
        self.split_mask = mask;
    }

    /// The round-robin scan start: the next `decide` call under
    /// [`Arbitration::RoundRobin`] scans from this index upward.
    pub fn rr_next(&self) -> usize {
        self.rr_next
    }

    /// Forces the round-robin scan start, for exhaustive state-space
    /// enumeration by the analyzer's `verify` pass.
    ///
    /// # Panics
    ///
    /// Panics if `rr_next` is at or above the master count.
    pub fn set_rr_next(&mut self, rr_next: usize) {
        assert!(rr_next < self.n_masters, "rr_next out of range");
        self.rr_next = rr_next;
    }
}

/// All-ones over the low `n` bits (`n <= 32`).
fn width_mask(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_priority_prefers_low_index() {
        let mut a = Arbiter::new(4, Arbitration::FixedPriority, MasterId(0));
        assert_eq!(a.decide(0b1010, MasterId(0), false), MasterId(1));
        assert_eq!(a.decide(0b1111, MasterId(1), false), MasterId(0));
    }

    #[test]
    fn default_master_when_idle() {
        let mut a = Arbiter::new(3, Arbitration::FixedPriority, MasterId(2));
        assert_eq!(a.decide(0b000, MasterId(0), false), MasterId(2));
    }

    #[test]
    fn locked_owner_keeps_bus() {
        let mut a = Arbiter::new(3, Arbitration::FixedPriority, MasterId(0));
        // Master 2 holds the lock; master 0 requesting cannot preempt.
        assert_eq!(a.decide(0b101, MasterId(2), true), MasterId(2));
        // Lock released: master 0 wins.
        assert_eq!(a.decide(0b101, MasterId(2), false), MasterId(0));
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = Arbiter::new(3, Arbitration::RoundRobin, MasterId(0));
        let all = 0b111;
        let g1 = a.decide(all, MasterId(0), false);
        let g2 = a.decide(all, g1, false);
        let g3 = a.decide(all, g2, false);
        assert_eq!(
            (g1, g2, g3),
            (MasterId(0), MasterId(1), MasterId(2)),
            "each master served in turn"
        );
        let g4 = a.decide(all, g3, false);
        assert_eq!(g4, MasterId(0), "wraps around");
    }

    #[test]
    fn round_robin_is_fair_under_contention() {
        let mut a = Arbiter::new(3, Arbitration::RoundRobin, MasterId(0));
        let mut owner = MasterId(0);
        for _ in 0..300 {
            owner = a.decide(0b111, owner, false);
        }
        for &c in a.grant_counts() {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn split_mask_blocks_and_unmask_restores() {
        let mut a = Arbiter::new(2, Arbitration::FixedPriority, MasterId(0));
        a.mask_split(MasterId(0));
        assert!(a.is_masked(MasterId(0)));
        // Master 0 requests but is masked: master 1 wins.
        assert_eq!(a.decide(0b11, MasterId(0), false), MasterId(1));
        // Nobody grantable: default master is granted even while masked
        // (it will drive IDLE, which is harmless).
        assert_eq!(a.decide(0b01, MasterId(1), false), MasterId(0));
        a.unmask(0b01);
        assert!(!a.is_masked(MasterId(0)));
        assert_eq!(a.decide(0b11, MasterId(1), false), MasterId(0));
    }

    #[test]
    fn unmask_only_named_bits() {
        let mut a = Arbiter::new(4, Arbitration::FixedPriority, MasterId(0));
        a.mask_split(MasterId(1));
        a.mask_split(MasterId(3));
        a.unmask(0b1000);
        assert!(a.is_masked(MasterId(1)));
        assert!(!a.is_masked(MasterId(3)));
    }

    #[test]
    fn policy_accessors() {
        let a = Arbiter::new(2, Arbitration::RoundRobin, MasterId(0));
        assert_eq!(a.n_masters(), 2);
        assert_eq!(a.policy(), Arbitration::RoundRobin);
        assert_eq!(Arbitration::RoundRobin.to_string(), "round-robin");
        assert_eq!(Arbitration::FixedPriority.to_string(), "fixed-priority");
    }

    #[test]
    fn state_hooks_round_trip() {
        let mut a = Arbiter::new(4, Arbitration::RoundRobin, MasterId(0));
        a.set_split_mask(0b1010);
        assert_eq!(a.split_mask(), 0b1010);
        assert!(a.is_masked(MasterId(1)));
        a.set_rr_next(3);
        assert_eq!(a.rr_next(), 3);
        // The forced state drives the next decision exactly as if it had
        // been reached through mask_split/decide history.
        assert_eq!(a.decide(0b1111, MasterId(0), false), MasterId(0));
        assert_eq!(a.rr_next(), 1);
    }

    #[test]
    #[should_panic(expected = "split mask width")]
    fn wide_split_mask_panics() {
        let mut a = Arbiter::new(2, Arbitration::FixedPriority, MasterId(0));
        a.set_split_mask(0b100);
    }

    #[test]
    #[should_panic(expected = "rr_next out of range")]
    fn rr_next_out_of_range_panics() {
        let mut a = Arbiter::new(2, Arbitration::RoundRobin, MasterId(0));
        a.set_rr_next(2);
    }

    #[test]
    #[should_panic(expected = "request width")]
    fn wrong_request_width_panics() {
        let mut a = Arbiter::new(2, Arbitration::FixedPriority, MasterId(0));
        let _ = a.decide(0b100, MasterId(0), false);
    }

    #[test]
    fn width_mask_covers_the_word() {
        assert_eq!(width_mask(1), 0b1);
        assert_eq!(width_mask(16), 0xFFFF);
        assert_eq!(width_mask(32), u32::MAX);
    }
}
