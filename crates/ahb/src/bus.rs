//! The AHB bus fabric: masters + slaves + arbiter + decoder + muxes,
//! advanced one clock cycle at a time.

use std::any::Any;
use std::error::Error;
use std::fmt;

use crate::arbiter::{Arbiter, Arbitration};
use crate::decoder::AddressMap;
use crate::master::AhbMaster;
use crate::slave::AhbSlave;
use crate::types::{
    AddressPhase, BusSnapshot, HResp, HSize, HTrans, MasterId, MasterIn, MasterOut, SlaveId,
    SlaveReply,
};

/// Errors detected when assembling an [`AhbBus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildBusError {
    /// The bus needs at least one master.
    NoMasters,
    /// The address map selects a slave index that was not attached.
    MissingSlave {
        /// The slave the map references.
        slave: SlaveId,
        /// How many slaves are attached.
        attached: usize,
    },
    /// More than 16 masters (HSPLIT is a 16-bit vector).
    TooManyMasters(usize),
    /// More than 32 slaves (HSEL is packed into a 32-bit snapshot word).
    TooManySlaves(usize),
}

impl fmt::Display for BuildBusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildBusError::NoMasters => f.write_str("bus needs at least one master"),
            BuildBusError::MissingSlave { slave, attached } => write!(
                f,
                "address map references {slave} but only {attached} slaves are attached"
            ),
            BuildBusError::TooManyMasters(n) => {
                write!(f, "{n} masters attached; AHB supports at most 16")
            }
            BuildBusError::TooManySlaves(n) => {
                write!(f, "{n} slaves attached; this fabric supports at most 32")
            }
        }
    }
}

impl Error for BuildBusError {}

/// What the bus is processing in its data phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataPhase {
    /// Nothing (reset, or after a stretched response).
    None,
    /// An IDLE/BUSY cycle: zero-wait OKAY.
    NoTransfer,
    /// A real transfer to `slave` (`None` = the built-in default slave).
    Transfer {
        master: MasterId,
        slave: Option<SlaveId>,
        write: bool,
    },
    /// Second cycle of a two-cycle ERROR/RETRY/SPLIT response.
    Stretch(HResp),
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Bus cycles executed.
    pub cycles: u64,
    /// Data phases completed with OKAY.
    pub transfers_ok: u64,
    /// ERROR responses (counted once per transfer).
    pub errors: u64,
    /// RETRY responses.
    pub retries: u64,
    /// SPLIT responses.
    pub splits: u64,
    /// Wait-state cycles (HREADY low with OKAY).
    pub wait_cycles: u64,
    /// Bus ownership changes (HMASTER edges) — the paper's "bus handover".
    pub handovers: u64,
    /// Cycles with an IDLE address phase.
    pub idle_cycles: u64,
    /// Completed transfers per slave (default slave excluded).
    pub per_slave_ok: Vec<u64>,
    /// Completed transfers per master.
    pub per_master_ok: Vec<u64>,
}

impl BusStats {
    /// Fraction of cycles that completed a data transfer (0..=1).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.transfers_ok as f64 / self.cycles as f64
    }

    /// Average wait-state cycles per completed transfer.
    pub fn avg_wait_per_transfer(&self) -> f64 {
        if self.transfers_ok == 0 {
            return 0.0;
        }
        self.wait_cycles as f64 / self.transfers_ok as f64
    }

    /// Data throughput in bytes per cycle, assuming word transfers (an
    /// upper bound; narrow transfers move fewer bytes).
    pub fn peak_throughput_bytes_per_cycle(&self) -> f64 {
        self.utilization() * 4.0
    }
}

/// Builder for an [`AhbBus`].
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{
///     AddressMap, AhbBusBuilder, Arbitration, MemorySlave, Op, ScriptedMaster,
/// };
///
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
///     .arbitration(Arbitration::FixedPriority)
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 5)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// bus.run(8);
/// assert_eq!(bus.stats().transfers_ok, 1);
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
pub struct AhbBusBuilder {
    map: AddressMap,
    policy: Arbitration,
    default_master: MasterId,
    masters: Vec<Box<dyn AhbMaster>>,
    slaves: Vec<Box<dyn AhbSlave>>,
}

impl AhbBusBuilder {
    /// Starts a builder over the given address map.
    pub fn new(map: AddressMap) -> Self {
        AhbBusBuilder {
            map,
            policy: Arbitration::FixedPriority,
            default_master: MasterId(0),
            masters: Vec::new(),
            slaves: Vec::new(),
        }
    }

    /// Sets the arbitration policy (default: fixed priority).
    pub fn arbitration(mut self, policy: Arbitration) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the default master (default: master 0).
    pub fn default_master(mut self, m: MasterId) -> Self {
        self.default_master = m;
        self
    }

    /// Attaches a master (priority = attach order).
    pub fn master(mut self, m: Box<dyn AhbMaster>) -> Self {
        self.masters.push(m);
        self
    }

    /// Attaches a slave (index = attach order, matching the address map).
    pub fn slave(mut self, s: Box<dyn AhbSlave>) -> Self {
        self.slaves.push(s);
        self
    }

    /// Builds the bus.
    ///
    /// # Errors
    ///
    /// See [`BuildBusError`].
    pub fn build(self) -> Result<AhbBus, BuildBusError> {
        if self.masters.is_empty() {
            return Err(BuildBusError::NoMasters);
        }
        if self.masters.len() > 16 {
            return Err(BuildBusError::TooManyMasters(self.masters.len()));
        }
        if self.slaves.len() > 32 {
            return Err(BuildBusError::TooManySlaves(self.slaves.len()));
        }
        for r in self.map.ranges() {
            if r.slave.index() >= self.slaves.len() {
                return Err(BuildBusError::MissingSlave {
                    slave: r.slave,
                    attached: self.slaves.len(),
                });
            }
        }
        let n_masters = self.masters.len();
        let n_slaves = self.slaves.len();
        let arbiter = Arbiter::new(n_masters, self.policy, self.default_master);
        Ok(AhbBus {
            masters: self.masters,
            slaves: self.slaves,
            map: self.map,
            arbiter,
            addr_owner: self.default_master,
            dp: DataPhase::None,
            hready_r: true,
            hresp_r: HResp::Okay,
            hrdata_r: 0,
            outs: Vec::with_capacity(n_masters),
            stats: BusStats {
                per_slave_ok: vec![0; n_slaves],
                per_master_ok: vec![0; n_masters],
                ..BusStats::default()
            },
            snapshot: BusSnapshot {
                cycle: 0,
                haddr: 0,
                htrans: HTrans::Idle,
                hwrite: false,
                hsize: HSize::Word,
                hburst: crate::types::HBurst::Single,
                hwdata: 0,
                hrdata: 0,
                hready: true,
                hresp: HResp::Okay,
                hmaster: self.default_master,
                hmastlock: false,
                hbusreq: 0,
                hgrant: 0,
                hsel: 0,
            },
        })
    }
}

/// The assembled AHB system: call [`AhbBus::step`] once per clock cycle.
///
/// The per-cycle [`BusSnapshot`] exposes every protocol wire, which is what
/// the power-analysis instrumentation observes.
pub struct AhbBus {
    masters: Vec<Box<dyn AhbMaster>>,
    slaves: Vec<Box<dyn AhbSlave>>,
    map: AddressMap,
    arbiter: Arbiter,
    /// Current address-phase owner (HMASTER).
    addr_owner: MasterId,
    dp: DataPhase,
    /// HREADY as sampled by everyone at the last edge.
    hready_r: bool,
    hresp_r: HResp,
    hrdata_r: u32,
    /// Reusable per-cycle master-output buffer: cleared and refilled every
    /// cycle so the hot loop never reallocates.
    outs: Vec<MasterOut>,
    stats: BusStats,
    snapshot: BusSnapshot,
}

impl AhbBus {
    /// Number of masters.
    pub fn n_masters(&self) -> usize {
        self.masters.len()
    }

    /// Number of slaves.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// The address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// The arbiter (for grant statistics).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The snapshot of the most recent cycle.
    pub fn snapshot(&self) -> &BusSnapshot {
        &self.snapshot
    }

    /// Typed access to a master (e.g. a [`crate::ScriptedMaster`]).
    pub fn master_as<T: Any>(&self, i: usize) -> Option<&T> {
        let m: &dyn Any = &*self.masters[i];
        m.downcast_ref::<T>()
    }

    /// Typed mutable access to a master.
    pub fn master_as_mut<T: Any>(&mut self, i: usize) -> Option<&mut T> {
        let m: &mut dyn Any = &mut *self.masters[i];
        m.downcast_mut::<T>()
    }

    /// Typed access to a slave (e.g. a [`crate::MemorySlave`]).
    pub fn slave_as<T: Any>(&self, i: usize) -> Option<&T> {
        let s: &dyn Any = &*self.slaves[i];
        s.downcast_ref::<T>()
    }

    /// Typed mutable access to a slave.
    pub fn slave_as_mut<T: Any>(&mut self, i: usize) -> Option<&mut T> {
        let s: &mut dyn Any = &mut *self.slaves[i];
        s.downcast_mut::<T>()
    }

    /// True when every master reports it has finished its work and no
    /// transfer is in flight.
    pub fn all_masters_done(&self) -> bool {
        self.masters.iter().all(|m| m.done())
            && matches!(self.dp, DataPhase::None | DataPhase::NoTransfer)
    }

    /// Synchronous reset: masters, slaves, fabric registers and bus
    /// ownership (back to the default master). Statistics are preserved.
    pub fn reset(&mut self) {
        for m in &mut self.masters {
            m.reset();
        }
        for s in &mut self.slaves {
            s.reset();
        }
        self.dp = DataPhase::None;
        self.hready_r = true;
        self.hresp_r = HResp::Okay;
        self.hrdata_r = 0;
        self.addr_owner = self.arbiter.default_master();
    }

    /// Advances the bus by one clock cycle and returns the cycle's wires.
    pub fn step(&mut self) -> &BusSnapshot {
        // 1. Masters act on edge-sampled values. The outputs land in the
        // reusable `outs` buffer and the request wires in a packed word, so
        // this phase performs no heap allocation after the first cycle.
        let owner = self.addr_owner;
        let mut busreq = 0u32;
        {
            let hready = self.hready_r;
            let hresp = self.hresp_r;
            let hrdata = self.hrdata_r;
            self.outs.clear();
            for (i, m) in self.masters.iter_mut().enumerate() {
                let out = m.cycle(&MasterIn {
                    grant: MasterId(i as u8) == owner,
                    ready: hready,
                    resp: hresp,
                    rdata: hrdata,
                });
                busreq |= u32::from(out.busreq) << i;
                self.outs.push(out);
            }
        }
        let ap = self.outs[owner.index()];
        // 2. M2S data mux: HWDATA comes from the data-phase owner.
        let hwdata = match self.dp {
            DataPhase::Transfer { master, write, .. } if write => self.outs[master.index()].wdata,
            _ => 0,
        };
        // 3. Data-phase evaluation (S2M mux result).
        let (hready, hresp, hrdata) = match self.dp {
            DataPhase::None | DataPhase::NoTransfer => (true, HResp::Okay, 0),
            DataPhase::Stretch(resp) => {
                self.dp = DataPhase::None;
                (true, resp, 0)
            }
            DataPhase::Transfer { master, slave, .. } => match slave {
                None => {
                    // Built-in default slave: ERROR every real transfer.
                    self.stats.errors += 1;
                    self.dp = DataPhase::Stretch(HResp::Error);
                    (false, HResp::Error, 0)
                }
                Some(s) => match self.slaves[s.index()].data_phase(hwdata) {
                    SlaveReply::Wait => {
                        self.stats.wait_cycles += 1;
                        (false, HResp::Okay, 0)
                    }
                    SlaveReply::Done { rdata } => {
                        self.stats.transfers_ok += 1;
                        self.stats.per_slave_ok[s.index()] += 1;
                        self.stats.per_master_ok[master.index()] += 1;
                        (true, HResp::Okay, rdata)
                    }
                    SlaveReply::Error => {
                        self.stats.errors += 1;
                        self.dp = DataPhase::Stretch(HResp::Error);
                        (false, HResp::Error, 0)
                    }
                    SlaveReply::Retry => {
                        self.stats.retries += 1;
                        self.dp = DataPhase::Stretch(HResp::Retry);
                        (false, HResp::Retry, 0)
                    }
                    SlaveReply::Split => {
                        self.stats.splits += 1;
                        self.arbiter.mask_split(master);
                        self.dp = DataPhase::Stretch(HResp::Split);
                        (false, HResp::Split, 0)
                    }
                },
            },
        };
        // 4. HSPLIT collection and per-cycle slave ticks.
        let mut hsplit = 0u16;
        for s in &mut self.slaves {
            hsplit |= s.split_done();
            s.tick();
        }
        self.arbiter.unmask(hsplit);
        // 5. Decode this cycle's address.
        let decoded = self.map.decode(ap.addr);
        // 6. Latch the address phase and re-arbitrate when the bus is ready.
        let mut next_owner = self.addr_owner;
        if hready {
            self.dp = if ap.trans.is_transfer() {
                match decoded {
                    Some(s) => {
                        self.slaves[s.index()].address_phase(&AddressPhase {
                            master: self.addr_owner,
                            addr: ap.addr,
                            write: ap.write,
                            size: ap.size,
                            burst: ap.burst,
                            trans: ap.trans,
                            mastlock: ap.lock,
                        });
                        DataPhase::Transfer {
                            master: self.addr_owner,
                            slave: Some(s),
                            write: ap.write,
                        }
                    }
                    None => DataPhase::Transfer {
                        master: self.addr_owner,
                        slave: None,
                        write: ap.write,
                    },
                }
            } else {
                DataPhase::NoTransfer
            };
            next_owner = self.arbiter.decide(busreq, self.addr_owner, ap.lock);
        }
        if ap.trans == HTrans::Idle {
            self.stats.idle_cycles += 1;
        }
        // 7. Publish this cycle's wires by updating the snapshot in place —
        // the struct is plain-old-data now, so this is a handful of stores.
        let snap = &mut self.snapshot;
        snap.cycle = self.stats.cycles;
        snap.haddr = ap.addr;
        snap.htrans = ap.trans;
        snap.hwrite = ap.write;
        snap.hsize = ap.size;
        snap.hburst = ap.burst;
        snap.hwdata = hwdata;
        snap.hrdata = hrdata;
        snap.hready = hready;
        snap.hresp = hresp;
        snap.hmaster = self.addr_owner;
        snap.hmastlock = ap.lock && ap.trans.is_transfer();
        snap.hbusreq = busreq;
        snap.hgrant = 1u32 << next_owner.index();
        snap.hsel = match decoded {
            Some(s) => 1u32 << s.index(),
            None => 0,
        };
        // 8. Advance registers.
        if next_owner != self.addr_owner {
            self.stats.handovers += 1;
        }
        self.addr_owner = next_owner;
        self.hready_r = hready;
        self.hresp_r = hresp;
        self.hrdata_r = hrdata;
        self.stats.cycles += 1;
        &self.snapshot
    }

    /// Runs `cycles` bus cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs `cycles` bus cycles, handing each cycle's snapshot to `observer`.
    pub fn run_with(&mut self, cycles: u64, mut observer: impl FnMut(&BusSnapshot)) {
        for _ in 0..cycles {
            observer(self.step());
        }
    }

    /// Runs until every master is done (or `max_cycles` elapse); returns the
    /// number of cycles executed.
    pub fn run_until_done(&mut self, max_cycles: u64) -> u64 {
        let mut n = 0;
        while n < max_cycles && !self.all_masters_done() {
            self.step();
            n += 1;
        }
        n
    }
}

impl fmt::Debug for AhbBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AhbBus")
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("cycle", &self.stats.cycles)
            .field("owner", &self.addr_owner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::{IdleMaster, Op, ScriptedMaster};
    use crate::slave::{ErrorSlave, MemorySlave, SplitSlave};
    use crate::types::HBurst;

    fn simple_bus(ops: Vec<Op>) -> AhbBus {
        AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut bus = simple_bus(vec![Op::write(0x10, 0xDEAD_BEEF), Op::read(0x10)]);
        let n = bus.run_until_done(100);
        assert!(n < 20, "should finish quickly, took {n}");
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.completed(), 2);
        assert_eq!(m.reads().next(), Some((0x10, 0xDEAD_BEEF)));
        assert_eq!(bus.stats().transfers_ok, 2);
    }

    #[test]
    fn transfers_route_by_address_map() {
        let mut bus = simple_bus(vec![Op::write(0x0, 1), Op::write(0x1000, 2)]);
        bus.run_until_done(100);
        assert_eq!(bus.stats().per_slave_ok, vec![1, 1]);
        assert_eq!(bus.slave_as::<MemorySlave>(0).unwrap().peek_word(0x0), 1);
        assert_eq!(bus.slave_as::<MemorySlave>(1).unwrap().peek_word(0x0), 2);
    }

    #[test]
    fn stats_utilization_and_latency() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 1),
                Op::write(0x4, 2),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .unwrap();
        bus.run_until_done(50);
        let s = bus.stats();
        assert_eq!(s.transfers_ok, 2);
        assert_eq!(s.avg_wait_per_transfer(), 1.0);
        assert!(s.utilization() > 0.0 && s.utilization() < 1.0);
        assert!(s.peak_throughput_bytes_per_cycle() <= 4.0);
        assert_eq!(BusStats::default().utilization(), 0.0);
        assert_eq!(BusStats::default().avg_wait_per_transfer(), 0.0);
    }

    #[test]
    fn wait_states_stretch_transfers() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 1),
                Op::write(0x4, 2),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 2, 0)))
            .build()
            .unwrap();
        let n = bus.run_until_done(100);
        assert_eq!(bus.stats().transfers_ok, 2);
        assert_eq!(bus.stats().wait_cycles, 4, "2 waits per NONSEQ transfer");
        assert!(n >= 8);
        let s = bus.slave_as::<MemorySlave>(0).unwrap();
        assert_eq!(s.peek_word(0x0), 1);
        assert_eq!(s.peek_word(0x4), 2);
    }

    #[test]
    fn burst_transfers_complete_in_order() {
        let data = [0x11, 0x22, 0x33, 0x44];
        let mut bus = simple_bus(vec![Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 0x100,
            data: data.to_vec(),
            size: HSize::Word,
            busy_between: 0,
        }]);
        bus.run_until_done(100);
        let s = bus.slave_as::<MemorySlave>(0).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(s.peek_word(0x100 + 4 * i as u32), *d);
        }
        assert_eq!(bus.stats().transfers_ok, 4);
    }

    #[test]
    fn wrapping_burst_reads_back() {
        let mut bus = simple_bus(vec![
            Op::write(0x30, 0xA0),
            Op::write(0x34, 0xA1),
            Op::write(0x38, 0xA2),
            Op::write(0x3C, 0xA3),
            Op::Burst {
                write: false,
                burst: HBurst::Wrap4,
                addr: 0x38,
                data: vec![0; 4],
                size: HSize::Word,
                busy_between: 0,
            },
        ]);
        bus.run_until_done(100);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        let reads: Vec<(u32, u32)> = m.reads().collect();
        assert_eq!(
            reads,
            vec![(0x38, 0xA2), (0x3C, 0xA3), (0x30, 0xA0), (0x34, 0xA1)]
        );
    }

    #[test]
    fn unmapped_address_hits_default_slave_error() {
        let mut bus = simple_bus(vec![Op::write(0x9000_0000, 1), Op::write(0x0, 2)]);
        bus.run_until_done(100);
        assert_eq!(bus.stats().errors, 1);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert_eq!(m.errors(), 1);
        assert_eq!(m.completed(), 1, "the mapped write still completes");
    }

    #[test]
    fn error_slave_two_cycle_response() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![Op::read(0x0)])))
            .slave(Box::new(ErrorSlave::new()))
            .build()
            .unwrap();
        let mut saw_first = false;
        let mut saw_second = false;
        let mut prev: Option<(bool, HResp)> = None;
        bus.run_with(20, |s| {
            if s.hresp == HResp::Error && !s.hready {
                saw_first = true;
            }
            if s.hresp == HResp::Error && s.hready {
                saw_second = true;
                assert_eq!(
                    prev,
                    Some((false, HResp::Error)),
                    "second ERROR cycle must follow the first"
                );
            }
            prev = Some((s.hready, s.hresp));
        });
        assert!(saw_first && saw_second);
    }

    #[test]
    fn two_masters_arbitrate_and_both_finish() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x10, 1),
                Op::Idle(2),
                Op::write(0x14, 2),
            ])))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x1010, 3),
                Op::Idle(1),
                Op::write(0x1014, 4),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        bus.run_until_done(200);
        assert!(bus.all_masters_done());
        assert_eq!(bus.stats().transfers_ok, 4);
        assert!(bus.stats().handovers >= 2, "bus changed hands");
        let s0 = bus.slave_as::<MemorySlave>(0).unwrap();
        assert_eq!((s0.peek_word(0x10), s0.peek_word(0x14)), (1, 2));
        let s1 = bus.slave_as::<MemorySlave>(1).unwrap();
        assert_eq!((s1.peek_word(0x10), s1.peek_word(0x14)), (3, 4));
    }

    #[test]
    fn locked_sequence_is_not_interrupted() {
        // Master 1 (lower priority) runs a locked write+read; master 0
        // floods single writes. The locked pair must complete back-to-back.
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x10000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::Idle(4),
                Op::write(0x100, 1),
                Op::write(0x104, 2),
                Op::write(0x108, 3),
            ])))
            .master(Box::new(ScriptedMaster::new(vec![Op::Locked(vec![
                Op::write(0x200, 0xAA),
                Op::read(0x200),
            ])])))
            .slave(Box::new(MemorySlave::new(0x10000, 0, 0)))
            .build()
            .unwrap();
        let mut owners = Vec::new();
        for _ in 0..30 {
            let s = *bus.step();
            if s.htrans.is_transfer() {
                owners.push((s.hmaster, s.haddr));
            }
            if bus.all_masters_done() {
                break;
            }
        }
        // Find master 1's two transfers: they must be adjacent.
        let m1_positions: Vec<usize> = owners
            .iter()
            .enumerate()
            .filter(|(_, (m, _))| *m == MasterId(1))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(m1_positions.len(), 2);
        assert_eq!(
            m1_positions[1],
            m1_positions[0] + 1,
            "locked transfers interleaved: {owners:?}"
        );
        let m1 = bus.master_as::<ScriptedMaster>(1).unwrap();
        assert_eq!(m1.reads().next(), Some((0x200, 0xAA)));
    }

    #[test]
    fn split_transfer_masks_master_then_completes() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![Op::read(0x8)])))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::Idle(1),
                Op::write(0x20, 5),
            ])))
            .slave(Box::new(SplitSlave::new(0x1000, 2, 4)))
            .build()
            .unwrap();
        let n = bus.run_until_done(100);
        assert!(n < 100, "split transfer must eventually complete");
        let m0 = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert!(m0.splits() >= 1);
        assert_eq!(m0.completed(), 1);
        // Both masters' first accesses are split by this slave.
        assert!(bus.stats().splits >= 2);
        assert_eq!(
            bus.slave_as::<SplitSlave>(0).unwrap().splits_issued(),
            2,
            "one real split per master"
        );
        let m1 = bus.master_as::<ScriptedMaster>(1).unwrap();
        assert!(m1.splits() >= 1);
        assert_eq!(m1.completed(), 1);
    }

    #[test]
    fn default_master_drives_idle_when_bus_unclaimed() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(IdleMaster::new()))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        bus.run(10);
        assert_eq!(bus.stats().idle_cycles, 10);
        assert_eq!(bus.stats().transfers_ok, 0);
        let snap = bus.snapshot();
        assert_eq!(snap.htrans, HTrans::Idle);
        assert_eq!(snap.hmaster, MasterId(0));
        assert!(snap.hready);
    }

    #[test]
    fn reset_mid_burst_restores_a_clean_bus() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x10000))
            .default_master(MasterId(1))
            .master(Box::new(ScriptedMaster::new(vec![Op::Burst {
                write: true,
                burst: HBurst::Incr8,
                addr: 0x100,
                data: vec![7; 8],
                size: HSize::Word,
                busy_between: 0,
            }])))
            .master(Box::new(IdleMaster::new()))
            .slave(Box::new(MemorySlave::new(0x10000, 1, 1)))
            .build()
            .unwrap();
        bus.run(5); // somewhere inside the burst
        assert!(!bus.all_masters_done());
        bus.reset();
        assert_eq!(bus.snapshot().hmaster, MasterId(0), "snapshot is stale");
        // After reset the script restarts and completes cleanly.
        let n = bus.run_until_done(200);
        assert!(n < 200);
        let m = bus.master_as::<ScriptedMaster>(0).unwrap();
        assert!(m.completed() >= 8, "burst completed after reset");
        // Ownership restarted from the default master at the reset boundary.
        let mem = bus.slave_as::<MemorySlave>(0).unwrap();
        assert_eq!(mem.peek_word(0x104), 7);
    }

    #[test]
    fn build_errors() {
        let e = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap_err();
        assert_eq!(e, BuildBusError::NoMasters);
        let e = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(IdleMaster::new()))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap_err();
        assert!(matches!(e, BuildBusError::MissingSlave { .. }));
        assert!(e.to_string().contains("slaves are attached"));
    }

    #[test]
    fn snapshot_wires_are_consistent() {
        let mut bus = simple_bus(vec![Op::write(0x4, 0xAB)]);
        let mut saw_transfer = false;
        bus.run_with(10, |s| {
            assert_eq!(s.hgrant.count_ones(), 1, "grant one-hot");
            assert!(s.hsel.count_ones() <= 1, "hsel one-hot");
            if s.htrans == HTrans::NonSeq {
                saw_transfer = true;
                assert_eq!(s.haddr, 0x4);
                assert!(s.hwrite);
                assert!(s.hsel_bit(0));
            }
        });
        assert!(saw_transfer);
    }
}
