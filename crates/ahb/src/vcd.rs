//! Bus-level waveform dumping: record every [`BusSnapshot`] into a VCD.
//!
//! The paper's methodology is built on observing "the value of every bus
//! signal at every bus event"; this tracer makes the same observation
//! stream inspectable in any waveform viewer.

use ahbpower_sim::{SimTime, VcdTrace, VcdVarId};

use crate::types::{BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};

/// Records bus snapshots into a [`VcdTrace`].
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, BusTracer, MemorySlave, Op, ScriptedMaster};
/// use ahbpower_sim::SimTime;
///
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x10, 1)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
/// for _ in 0..6 {
///     tracer.observe(bus.step());
/// }
/// let vcd = tracer.render();
/// assert!(vcd.contains("$var wire 32 ! haddr"));
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug)]
pub struct BusTracer {
    trace: VcdTrace,
    period: SimTime,
    haddr: VcdVarId,
    htrans: VcdVarId,
    hwrite: VcdVarId,
    hsize: VcdVarId,
    hburst: VcdVarId,
    hwdata: VcdVarId,
    hrdata: VcdVarId,
    hready: VcdVarId,
    hresp: VcdVarId,
    hmaster: VcdVarId,
    hmastlock: VcdVarId,
    hbusreq: VcdVarId,
    hgrant: VcdVarId,
    hsel: VcdVarId,
    n_masters: usize,
    n_slaves: usize,
    prev: Option<BusSnapshot>,
    cycles: u64,
}

fn bits(value: u64, width: usize) -> String {
    (0..width)
        .rev()
        .map(|i| if (value >> i) & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// The largest legal VCD timescale (1, 10 or 100 of ps/ns/us/ms) that
/// divides `period`, so every cycle boundary lands on an integer tick.
/// The paper's 10 ns bus clock maps to `$timescale 10ns`.
fn derive_timescale(period: SimTime) -> SimTime {
    const CANDIDATES_PS: [u64; 12] = [
        100_000_000_000, // 100 ms
        10_000_000_000,  // 10 ms
        1_000_000_000,   // 1 ms
        100_000_000,     // 100 us
        10_000_000,      // 10 us
        1_000_000,       // 1 us
        100_000,         // 100 ns
        10_000,          // 10 ns
        1_000,           // 1 ns
        100,             // 100 ps
        10,              // 10 ps
        1,               // 1 ps
    ];
    let ps = period.as_ps();
    let tick = CANDIDATES_PS
        .iter()
        .copied()
        .find(|&c| ps.is_multiple_of(c))
        .unwrap_or(1);
    SimTime::from_ps(tick)
}

/// The wire values declared as VCD initials in [`BusTracer::new`]; the
/// first observed cycle only records fields that differ from these.
fn initial_snapshot() -> BusSnapshot {
    BusSnapshot {
        cycle: 0,
        haddr: 0,
        htrans: HTrans::Idle,
        hwrite: false,
        hsize: HSize::Byte,
        hburst: HBurst::Single,
        hwdata: 0,
        hrdata: 0,
        hready: true,
        hresp: HResp::Okay,
        hmaster: MasterId(0),
        hmastlock: false,
        hbusreq: 0,
        hgrant: 0,
        hsel: 0,
    }
}

impl BusTracer {
    /// Creates a tracer for a bus with the given master/slave counts; one
    /// snapshot is one `period` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `n_masters == 0` or `n_slaves == 0`.
    pub fn new(n_masters: usize, n_slaves: usize, period: SimTime) -> Self {
        assert!(n_masters > 0 && n_slaves > 0, "empty bus");
        assert!(period.as_ps() > 0, "period must be positive");
        let mut t = VcdTrace::new();
        t.set_timescale(derive_timescale(period));
        let z32 = "0".repeat(32);
        BusTracer {
            haddr: t.add_var("haddr", 32, &z32),
            htrans: t.add_var("htrans", 2, "00"),
            hwrite: t.add_var("hwrite", 1, "0"),
            hsize: t.add_var("hsize", 3, "000"),
            hburst: t.add_var("hburst", 3, "000"),
            hwdata: t.add_var("hwdata", 32, &z32),
            hrdata: t.add_var("hrdata", 32, &z32),
            hready: t.add_var("hready", 1, "1"),
            hresp: t.add_var("hresp", 2, "00"),
            hmaster: t.add_var("hmaster", 4, "0000"),
            hmastlock: t.add_var("hmastlock", 1, "0"),
            hbusreq: t.add_var("hbusreq", n_masters, &"0".repeat(n_masters)),
            hgrant: t.add_var("hgrant", n_masters, &"0".repeat(n_masters)),
            hsel: t.add_var("hsel", n_slaves, &"0".repeat(n_slaves)),
            n_masters,
            n_slaves,
            trace: t,
            period,
            // Seeding `prev` with the declared initial values dedups the
            // first cycle too: fields equal to their `$dumpvars` initials
            // are not re-recorded at #0.
            prev: Some(initial_snapshot()),
            cycles: 0,
        }
    }

    /// Records one cycle's wires (only actual changes are written).
    pub fn observe(&mut self, snap: &BusSnapshot) {
        let time = self.period * self.cycles;
        let n_masters = self.n_masters;
        let n_slaves = self.n_slaves;
        macro_rules! rec {
            ($field:ident, $width:expr, $value:expr) => {
                if self
                    .prev
                    .as_ref()
                    .is_none_or(|p| field_of(p, stringify!($field)) != $value)
                {
                    let b = bits($value, $width);
                    self.trace.record_var(time, self.$field, &b);
                }
            };
        }
        fn field_of(s: &BusSnapshot, name: &str) -> u64 {
            match name {
                "haddr" => u64::from(s.haddr),
                "htrans" => u64::from(s.htrans.bits()),
                "hwrite" => u64::from(s.hwrite),
                "hsize" => u64::from(s.hsize.bits()),
                "hburst" => u64::from(s.hburst.bits()),
                "hwdata" => u64::from(s.hwdata),
                "hrdata" => u64::from(s.hrdata),
                "hready" => u64::from(s.hready),
                "hresp" => u64::from(s.hresp.bits()),
                "hmaster" => u64::from(s.hmaster.0),
                "hmastlock" => u64::from(s.hmastlock),
                "hbusreq" => u64::from(s.hbusreq),
                "hgrant" => u64::from(s.hgrant_bits()),
                "hsel" => u64::from(s.hsel_bits()),
                _ => unreachable!("unknown field {name}"),
            }
        }
        rec!(haddr, 32, u64::from(snap.haddr));
        rec!(htrans, 2, u64::from(snap.htrans.bits()));
        rec!(hwrite, 1, u64::from(snap.hwrite));
        rec!(hsize, 3, u64::from(snap.hsize.bits()));
        rec!(hburst, 3, u64::from(snap.hburst.bits()));
        rec!(hwdata, 32, u64::from(snap.hwdata));
        rec!(hrdata, 32, u64::from(snap.hrdata));
        rec!(hready, 1, u64::from(snap.hready));
        rec!(hresp, 2, u64::from(snap.hresp.bits()));
        rec!(hmaster, 4, u64::from(snap.hmaster.0));
        rec!(hmastlock, 1, u64::from(snap.hmastlock));
        rec!(hbusreq, n_masters, u64::from(snap.hbusreq));
        rec!(hgrant, n_masters, u64::from(snap.hgrant_bits()));
        rec!(hsel, n_slaves, u64::from(snap.hsel_bits()));
        self.prev = Some(*snap);
        self.cycles += 1;
    }

    /// Cycles recorded so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Renders the accumulated VCD document.
    pub fn render(&self) -> String {
        self.trace.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::AhbBusBuilder;
    use crate::decoder::AddressMap;
    use crate::master::{Op, ScriptedMaster};
    use crate::slave::MemorySlave;

    #[test]
    fn traces_bus_activity_to_vcd() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x10, 0xFF),
                Op::read(0x1004),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .unwrap();
        let mut tracer = BusTracer::new(1, 2, SimTime::from_ns(10));
        for _ in 0..12 {
            tracer.observe(bus.step());
        }
        assert_eq!(tracer.cycles(), 12);
        let vcd = tracer.render();
        assert!(vcd.contains("$var wire 32"));
        assert!(vcd.contains("$var wire 2"));
        // The write address appears as a change.
        assert!(vcd.contains(&format!("b{}", bits(0x10, 32))), "{vcd}");
        // Wait-state cycle on slave 1 shows hready low at some point.
        assert!(vcd.lines().any(|l| l.starts_with("#")));
    }

    #[test]
    fn unchanged_signals_are_not_rerecorded() {
        let snap = BusSnapshot {
            cycle: 0,
            haddr: 0x44,
            htrans: crate::HTrans::NonSeq,
            hwrite: true,
            hsize: crate::HSize::Word,
            hburst: crate::HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: crate::HResp::Okay,
            hmaster: crate::MasterId(0),
            hmastlock: false,
            hbusreq: 0b1,
            hgrant: 0b1,
            hsel: 0b1,
        };
        let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
        tracer.observe(&snap);
        let after_first = tracer.trace.len();
        tracer.observe(&snap);
        assert_eq!(tracer.trace.len(), after_first, "no changes, no records");
    }

    #[test]
    fn timescale_derives_from_period() {
        for (period, tick) in [
            (SimTime::from_ns(10), SimTime::from_ns(10)),
            (SimTime::from_ns(7), SimTime::from_ns(1)),
            (SimTime::from_ps(2_000_000), SimTime::from_ps(1_000_000)),
            (SimTime::from_ps(33), SimTime::from_ps(1)),
            (SimTime::from_ps(100_000), SimTime::from_ps(100_000)),
        ] {
            assert_eq!(derive_timescale(period), tick, "period {period:?}");
        }
        let tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
        assert!(tracer.render().contains("$timescale 10ns $end"));
        // Cycle stamps count in 10 ns ticks, not picoseconds.
        let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
        let mut snap = super::initial_snapshot();
        tracer.observe(&snap);
        snap.haddr = 0x44;
        tracer.observe(&snap);
        let vcd = tracer.render();
        assert!(vcd.contains("#1\n"), "{vcd}");
        assert!(!vcd.contains("#10000"), "{vcd}");
    }

    #[test]
    fn first_cycle_records_only_deviations_from_initials() {
        let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
        tracer.observe(&super::initial_snapshot());
        assert_eq!(
            tracer.trace.len(),
            0,
            "a first cycle equal to the declared initials records nothing"
        );
        let mut snap = super::initial_snapshot();
        snap.hgrant = 0b1;
        snap.hready = false;
        let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
        tracer.observe(&snap);
        assert_eq!(tracer.trace.len(), 2, "only hgrant and hready changed");
    }

    #[test]
    fn bits_renders_msb_first() {
        assert_eq!(bits(0b101, 4), "0101");
        assert_eq!(bits(1, 1), "1");
        assert_eq!(bits(0, 3), "000");
    }
}
