//! Bus-performance analysis: per-master service counters and latency /
//! burst-length histograms derived from the per-cycle [`BusSnapshot`].
//!
//! [`BusPerfAnalyzer`] is a passive observer like the protocol checker: it
//! sees every cycle's wires and derives the performance quantities the
//! power methodology correlates energy against — who got the bus, how long
//! requests waited for a grant, how slaves stretched transfers with wait
//! states, and how traffic batches into bursts. All counters are plain
//! integers updated in place; observing a cycle allocates nothing.

use crate::types::{BusSnapshot, HResp, HTrans, MasterId};

/// A fixed-bucket histogram over integer-valued cycle counts.
///
/// Buckets are defined by inclusive upper bounds plus an implicit overflow
/// bucket, mirroring Prometheus' cumulative `le` convention when exported.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::CycleHistogram;
///
/// let mut h = CycleHistogram::new(&[1, 2, 4]);
/// h.observe(1);
/// h.observe(3);
/// h.observe(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 104);
/// assert_eq!(h.bucket_counts(), &[1, 0, 1, 1]); // <=1, <=2, <=4, +Inf
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl CycleHistogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        CycleHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The inclusive upper bounds (the final overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts in Prometheus `le` style; the last entry equals
    /// [`CycleHistogram::count`].
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one: per-bucket counts
    /// (including the overflow bucket), the value sum and the
    /// observation count all add. Merging is exactly equivalent to
    /// having observed the union of both sample streams, so quantiles
    /// and means of the merged histogram describe the combined
    /// population — this is what lets per-shard latency/power
    /// histograms aggregate into one serving-plane view.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ; merging histograms with
    /// different layouts has no meaningful result.
    pub fn merge(&mut self, other: &CycleHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation within the bucket containing the target rank, the
    /// Prometheus `histogram_quantile` convention: bucket `i` spans
    /// `(bounds[i-1], bounds[i]]` (the first spans `[0, bounds[0]]`).
    /// Ranks that land in the overflow bucket return the last finite
    /// bound — histograms cannot say more than their largest bound. An
    /// empty histogram returns `0.0`; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev_cum = cum;
            cum += c;
            if (cum as f64) < rank || c == 0 {
                continue;
            }
            if i >= self.bounds.len() {
                // Overflow bucket: unbounded above, clamp to the last
                // finite bound.
                return self.bounds[self.bounds.len() - 1] as f64;
            }
            let lo = if i == 0 {
                0.0
            } else {
                self.bounds[i - 1] as f64
            };
            let hi = self.bounds[i] as f64;
            let into = (rank - prev_cum as f64) / c as f64;
            return lo + (hi - lo) * into.clamp(0.0, 1.0);
        }
        self.bounds[self.bounds.len() - 1] as f64
    }
}

/// Per-master service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterPerf {
    /// Cycles this master owned the address phase (HMASTER).
    pub grant_cycles: u64,
    /// Data transfers this master completed with OKAY.
    pub transfers_ok: u64,
    /// Wait-state cycles inserted into this master's data phases.
    pub wait_cycles: u64,
    /// Cycles this master spent requesting the bus without owning it.
    pub request_wait_cycles: u64,
}

/// Passive per-cycle bus-performance analyzer.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{
///     AddressMap, AhbBusBuilder, BusPerfAnalyzer, MemorySlave, Op, ScriptedMaster,
/// };
///
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 1), Op::read(0x0)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let mut perf = BusPerfAnalyzer::new(1);
/// for _ in 0..20 {
///     perf.observe(bus.step());
/// }
/// perf.finish();
/// assert_eq!(perf.cycles(), 20);
/// assert_eq!(perf.master(0).transfers_ok, 2);
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BusPerfAnalyzer {
    cycles: u64,
    handovers: u64,
    data_transfer_cycles: u64,
    idle_cycles: u64,
    masters: Vec<MasterPerf>,
    /// Cycle each master's current request started waiting, if any.
    request_since: Vec<Option<u64>>,
    arbitration_latency: CycleHistogram,
    burst_beats: CycleHistogram,
    /// Beats observed in the burst currently in flight.
    open_burst_beats: u64,
    /// Owner of the data phase in flight (`None` while the pipe is empty).
    dp_master: Option<MasterId>,
    prev_hmaster: Option<MasterId>,
}

/// Default arbitration-latency bucket bounds, cycles.
pub const ARBITRATION_LATENCY_BOUNDS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

/// Default burst-length bucket bounds, beats (AHB's fixed burst kinds).
pub const BURST_BEATS_BOUNDS: [u64; 5] = [1, 2, 4, 8, 16];

impl BusPerfAnalyzer {
    /// Creates an analyzer for a bus with `n_masters` masters.
    pub fn new(n_masters: usize) -> Self {
        BusPerfAnalyzer {
            cycles: 0,
            handovers: 0,
            data_transfer_cycles: 0,
            idle_cycles: 0,
            masters: vec![MasterPerf::default(); n_masters],
            request_since: vec![None; n_masters],
            arbitration_latency: CycleHistogram::new(&ARBITRATION_LATENCY_BOUNDS),
            burst_beats: CycleHistogram::new(&BURST_BEATS_BOUNDS),
            open_burst_beats: 0,
            dp_master: None,
            prev_hmaster: None,
        }
    }

    /// Observes one cycle's wires. Allocation-free.
    pub fn observe(&mut self, snap: &BusSnapshot) {
        let owner = snap.hmaster.index();
        if self.masters.len() <= owner {
            // A master the constructor did not know about (defensive).
            self.masters.resize(owner + 1, MasterPerf::default());
            self.request_since.resize(owner + 1, None);
        }
        self.masters[owner].grant_cycles += 1;
        if let Some(prev) = self.prev_hmaster {
            if prev != snap.hmaster {
                self.handovers += 1;
            }
        }
        self.prev_hmaster = Some(snap.hmaster);

        // Data-phase accounting: the transfer in flight belongs to the
        // master that issued its address phase, not the current owner.
        if snap.hready {
            if let Some(m) = self.dp_master.take() {
                self.masters[m.index()].transfers_ok += u64::from(snap.hresp == HResp::Okay);
                self.data_transfer_cycles += 1;
            }
        } else if snap.hresp == HResp::Okay {
            if let Some(m) = self.dp_master {
                self.masters[m.index()].wait_cycles += 1;
            }
        }
        if snap.hready && snap.htrans.is_transfer() {
            self.dp_master = Some(snap.hmaster);
        }

        // Arbitration latency: cycles from a master raising HBUSREQ to its
        // first owning cycle.
        for i in 0..self.request_since.len() {
            let req = snap.hbusreq_bit(i);
            if i == owner {
                if let Some(since) = self.request_since[i].take() {
                    self.arbitration_latency.observe(self.cycles - since);
                }
            } else if req {
                if self.request_since[i].is_none() {
                    self.request_since[i] = Some(self.cycles);
                }
                self.masters[i].request_wait_cycles += 1;
            } else {
                self.request_since[i] = None;
            }
        }

        // Burst shape: NONSEQ opens a burst, SEQ extends it, IDLE closes it.
        match snap.htrans {
            HTrans::NonSeq => {
                self.close_burst();
                self.open_burst_beats = 1;
            }
            HTrans::Seq => self.open_burst_beats += 1,
            HTrans::Busy => {}
            HTrans::Idle => {
                self.close_burst();
                self.idle_cycles += 1;
            }
        }
        self.cycles += 1;
    }

    fn close_burst(&mut self) {
        if self.open_burst_beats > 0 {
            self.burst_beats.observe(self.open_burst_beats);
            self.open_burst_beats = 0;
        }
    }

    /// Closes any burst still in flight; call once after the run.
    pub fn finish(&mut self) {
        self.close_burst();
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Bus ownership changes.
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// Cycles with an IDLE address phase.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Per-master counters (index = master id).
    pub fn masters(&self) -> &[MasterPerf] {
        &self.masters
    }

    /// Counters for one master.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn master(&self, i: usize) -> &MasterPerf {
        &self.masters[i]
    }

    /// The request-to-grant latency histogram, cycles.
    pub fn arbitration_latency(&self) -> &CycleHistogram {
        &self.arbitration_latency
    }

    /// The burst-length histogram, beats.
    pub fn burst_beats(&self) -> &CycleHistogram {
        &self.burst_beats
    }

    /// Fraction of cycles that completed a data transfer (0..=1).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.data_transfer_cycles as f64 / self.cycles as f64
        }
    }

    /// Handovers per cycle (0..=1).
    pub fn handover_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.handovers as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::AhbBusBuilder;
    use crate::decoder::AddressMap;
    use crate::master::{Op, ScriptedMaster};
    use crate::slave::MemorySlave;
    use crate::types::HBurst;

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = CycleHistogram::new(&[1, 2, 4]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let mut h = CycleHistogram::new(&[10]);
        // 4 observations, all in [0, 10]: rank q*4 interpolates linearly.
        for v in [1, 2, 3, 4] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 5.0, "rank 2 of 4 → midpoint of [0,10]");
        assert_eq!(h.quantile(1.0), 10.0, "top rank → bucket upper bound");
        assert_eq!(h.quantile(0.0), 0.0, "bottom rank → bucket lower bound");
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        let mut h = CycleHistogram::new(&[1, 2, 4]);
        // One observation per finite bucket.
        h.observe(1);
        h.observe(2);
        h.observe(3);
        // Ranks: q=1/3 exactly exhausts bucket 0 → its upper bound.
        let q13 = h.quantile(1.0 / 3.0);
        assert!((q13 - 1.0).abs() < 1e-9, "boundary rank hits le=1: {q13}");
        let q23 = h.quantile(2.0 / 3.0);
        assert!((q23 - 2.0).abs() < 1e-9, "boundary rank hits le=2: {q23}");
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn quantile_skips_empty_buckets() {
        let mut h = CycleHistogram::new(&[1, 2, 4, 8]);
        h.observe(1);
        h.observe(8); // buckets le=2 and le=4 stay empty
        assert_eq!(h.quantile(0.25), 0.5, "rank 0.5 interpolates in [0,1]");
        let p75 = h.quantile(0.75);
        assert!((p75 - 6.0).abs() < 1e-9, "rank 1.5 lands mid (4,8]: {p75}");
    }

    #[test]
    fn quantile_clamps_overflow_to_last_bound() {
        let mut h = CycleHistogram::new(&[1, 2]);
        h.observe(100);
        h.observe(200);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn histogram_buckets_and_cumulative() {
        let mut h = CycleHistogram::new(&[0, 2, 8]);
        for v in [0, 0, 1, 5, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 2]);
        assert_eq!(h.cumulative_counts(), vec![2, 3, 4, 6]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 115);
        assert!((h.mean() - 115.0 / 6.0).abs() < 1e-12);
        assert_eq!(CycleHistogram::new(&[1]).mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = CycleHistogram::new(&[2, 1]);
    }

    #[test]
    fn merge_equals_union_of_observations() {
        let bounds = [1, 2, 4, 8];
        let left = [0, 1, 3, 100];
        let right = [2, 2, 5, 9, 7];
        let mut a = CycleHistogram::new(&bounds);
        let mut b = CycleHistogram::new(&bounds);
        let mut union = CycleHistogram::new(&bounds);
        for v in left {
            a.observe(v);
            union.observe(v);
        }
        for v in right {
            b.observe(v);
            union.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), union.bucket_counts());
        assert_eq!(a.cumulative_counts(), union.cumulative_counts());
        assert_eq!(a.count(), union.count());
        assert_eq!(a.sum(), union.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), union.quantile(q), "q={q} diverged");
        }
        assert!((a.mean() - union.mean()).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_boundary_and_overflow_buckets() {
        let mut a = CycleHistogram::new(&[1, 2]);
        let mut b = CycleHistogram::new(&[1, 2]);
        a.observe(1); // exactly on le=1
        a.observe(3); // overflow
        b.observe(1);
        b.observe(2); // exactly on le=2
        b.observe(100); // overflow
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[2, 1, 2]);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 107);
        // Overflow ranks still clamp to the last finite bound.
        assert_eq!(a.quantile(1.0), 2.0);
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = CycleHistogram::new(&[10]);
        a.observe(4);
        let before = (a.bucket_counts().to_vec(), a.sum(), a.count());
        a.merge(&CycleHistogram::new(&[10]));
        assert_eq!(
            (a.bucket_counts().to_vec(), a.sum(), a.count()),
            before,
            "merging an empty histogram must change nothing"
        );
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = CycleHistogram::new(&[1, 2]);
        a.merge(&CycleHistogram::new(&[1, 3]));
    }

    fn run_analyzed(ops0: Vec<Op>, ops1: Vec<Op>, cycles: u64) -> BusPerfAnalyzer {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops0)))
            .master(Box::new(ScriptedMaster::new(ops1)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        let mut perf = BusPerfAnalyzer::new(2);
        for _ in 0..cycles {
            perf.observe(bus.step());
        }
        perf.finish();
        perf
    }

    #[test]
    fn transfers_attributed_to_data_phase_owner() {
        let perf = run_analyzed(
            vec![Op::write(0x0, 1), Op::read(0x0)],
            vec![Op::Idle(1), Op::write(0x1000, 2)],
            40,
        );
        assert_eq!(perf.master(0).transfers_ok, 2);
        assert_eq!(perf.master(1).transfers_ok, 1);
        assert_eq!(perf.cycles(), 40);
        assert!(perf.handovers() >= 2, "bus changed hands");
        assert!(perf.utilization() > 0.0 && perf.utilization() < 1.0);
        assert!(perf.handover_rate() > 0.0);
        let grants: u64 = perf.masters().iter().map(|m| m.grant_cycles).sum();
        assert_eq!(grants, 40, "every cycle has exactly one owner");
    }

    #[test]
    fn wait_states_counted_per_master() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 1),
                Op::write(0x4, 2),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 2, 0)))
            .build()
            .unwrap();
        let mut perf = BusPerfAnalyzer::new(1);
        for _ in 0..40 {
            perf.observe(bus.step());
        }
        perf.finish();
        assert_eq!(perf.master(0).transfers_ok, 2);
        assert_eq!(perf.master(0).wait_cycles, 4, "2 wait states per write");
    }

    #[test]
    fn arbitration_latency_recorded_for_waiting_master() {
        // Master 1 requests while master 0 (higher priority) transfers:
        // its grant is delayed, producing a non-zero latency observation.
        let perf = run_analyzed(
            vec![
                Op::write(0x0, 1),
                Op::write(0x4, 2),
                Op::write(0x8, 3),
                Op::Idle(6),
            ],
            vec![Op::Idle(1), Op::write(0x1000, 9), Op::Idle(6)],
            60,
        );
        // Master 0 owns the bus from reset (default master) and never
        // waits; only master 1's delayed grant produces an observation.
        let h = perf.arbitration_latency();
        assert!(h.count() >= 1, "master 1 was eventually granted: {h:?}");
        assert!(h.sum() > 0, "master 1 waited for the bus: {h:?}");
        assert!(perf.master(1).request_wait_cycles > 0);
    }

    #[test]
    fn burst_lengths_land_in_buckets() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x10000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::Burst {
                    write: true,
                    burst: HBurst::Incr4,
                    addr: 0x0,
                    data: vec![1, 2, 3, 4],
                    size: crate::types::HSize::Word,
                    busy_between: 0,
                },
                Op::Idle(2),
                Op::write(0x100, 7),
            ])))
            .slave(Box::new(MemorySlave::new(0x10000, 0, 0)))
            .build()
            .unwrap();
        let mut perf = BusPerfAnalyzer::new(1);
        for _ in 0..40 {
            perf.observe(bus.step());
        }
        perf.finish();
        let h = perf.burst_beats();
        assert_eq!(h.count(), 2, "one 4-beat burst + one single: {h:?}");
        assert_eq!(h.sum(), 5);
        // Bucket bounds are [1, 2, 4, 8, 16]: the single lands in <=1 and
        // the 4-beat burst in <=4.
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[2], 1);
    }

    #[test]
    fn empty_analyzer_rates_are_zero() {
        let perf = BusPerfAnalyzer::new(2);
        assert_eq!(perf.utilization(), 0.0);
        assert_eq!(perf.handover_rate(), 0.0);
        assert_eq!(perf.cycles(), 0);
        assert_eq!(perf.masters().len(), 2);
    }
}
