//! A passive AHB protocol checker over per-cycle [`BusSnapshot`]s.
//!
//! Feed every cycle's snapshot to [`ProtocolChecker::check`]; violations are
//! collected with their cycle numbers. The checker encodes the AMBA 2.0
//! rules the rest of this crate relies on, and doubles as a regression net
//! for the bus fabric and the master models.

use std::fmt;

use crate::burst::{is_aligned, next_beat_addr};
use crate::types::{BusSnapshot, HBurst, HResp, HSize, HTrans};

/// The protocol rule a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Address/control must not change while HREADY is low (plain waits).
    AddressStableDuringWait,
    /// HMASTER must not change while HREADY is low.
    MasterStableDuringWait,
    /// The cycle after the first RETRY/SPLIT cycle must drive IDLE.
    IdleAfterRetrySplit,
    /// A SEQ beat's address/control must continue its burst.
    SeqContinuity,
    /// BUSY is only legal inside a multi-beat burst.
    BusyOnlyInBurst,
    /// ERROR/RETRY/SPLIT must be two-cycle responses.
    TwoCycleResponse,
    /// HGRANT must be one-hot.
    GrantOneHot,
    /// HSEL must be at most one-hot.
    SelAtMostOneHot,
    /// Transfer addresses must be aligned to HSIZE.
    Alignment,
    /// A fixed-length burst must not carry more SEQ beats than its length.
    BurstOverrun,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::AddressStableDuringWait => "address stable during wait states",
            Rule::MasterStableDuringWait => "HMASTER stable during wait states",
            Rule::IdleAfterRetrySplit => "IDLE after first RETRY/SPLIT cycle",
            Rule::SeqContinuity => "SEQ burst continuity",
            Rule::BusyOnlyInBurst => "BUSY only inside a burst",
            Rule::TwoCycleResponse => "two-cycle ERROR/RETRY/SPLIT response",
            Rule::GrantOneHot => "HGRANT one-hot",
            Rule::SelAtMostOneHot => "HSEL at most one-hot",
            Rule::Alignment => "address aligned to transfer size",
            Rule::BurstOverrun => "fixed-length burst beat count",
        };
        f.write_str(s)
    }
}

/// One recorded protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Bus cycle at which the violation was observed.
    pub cycle: u64,
    /// The rule that was broken.
    pub rule: Rule,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {} — {}", self.cycle, self.rule, self.detail)
    }
}

/// The running checker state.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ProtocolChecker,
///                    ScriptedMaster};
///
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 1)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
///     .build()?;
/// let mut checker = ProtocolChecker::new();
/// for _ in 0..10 {
///     checker.check(bus.step());
/// }
/// assert!(checker.violations().is_empty());
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProtocolChecker {
    prev: Option<BusSnapshot>,
    /// The last accepted beat (for SEQ/BUSY continuity).
    burst_ctx: Option<BurstCtx>,
    violations: Vec<Violation>,
    cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct BurstCtx {
    addr: u32,
    size: HSize,
    burst: HBurst,
    write: bool,
    /// Beats accepted so far in this burst (NONSEQ counts as the first).
    beats: usize,
}

impl ProtocolChecker {
    /// Creates a fresh checker.
    pub fn new() -> Self {
        ProtocolChecker::default()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Cycles checked so far.
    pub fn cycles_checked(&self) -> u64 {
        self.cycles
    }

    fn report(&mut self, cycle: u64, rule: Rule, detail: String) {
        self.violations.push(Violation {
            cycle,
            rule,
            detail,
        });
    }

    /// Checks one cycle's wires against the protocol rules.
    pub fn check(&mut self, snap: &BusSnapshot) {
        self.cycles += 1;
        let c = snap.cycle;
        // Static shape rules.
        if snap.hgrant.count_ones() != 1 {
            self.report(c, Rule::GrantOneHot, format!("HGRANT = {:#b}", snap.hgrant));
        }
        if snap.hsel.count_ones() > 1 {
            self.report(c, Rule::SelAtMostOneHot, format!("HSEL = {:#b}", snap.hsel));
        }
        if snap.htrans.is_transfer() && !is_aligned(snap.haddr, snap.hsize) {
            self.report(
                c,
                Rule::Alignment,
                format!("{:#x} not aligned to {}", snap.haddr, snap.hsize),
            );
        }
        // Response shape: a non-OKAY with HREADY high must be the second
        // cycle of a pair.
        if snap.hresp != HResp::Okay && snap.hready {
            let ok = self
                .prev
                .as_ref()
                .is_some_and(|p| !p.hready && p.hresp == snap.hresp);
            if !ok {
                self.report(
                    c,
                    Rule::TwoCycleResponse,
                    format!("{} completed without a first cycle", snap.hresp),
                );
            }
        }
        if let Some(p) = self.prev {
            if !p.hready {
                match p.hresp {
                    HResp::Retry | HResp::Split => {
                        if snap.htrans != HTrans::Idle {
                            self.report(
                                c,
                                Rule::IdleAfterRetrySplit,
                                format!("drove {} after first {} cycle", snap.htrans, p.hresp),
                            );
                        }
                    }
                    _ => {
                        // Plain wait (or first ERROR cycle where the master
                        // continues): the address phase must hold.
                        if (
                            snap.haddr,
                            snap.htrans,
                            snap.hwrite,
                            snap.hsize,
                            snap.hburst,
                        ) != (p.haddr, p.htrans, p.hwrite, p.hsize, p.hburst)
                        {
                            self.report(
                                c,
                                Rule::AddressStableDuringWait,
                                format!(
                                    "addr {:#x}->{:#x} trans {}->{}",
                                    p.haddr, snap.haddr, p.htrans, snap.htrans
                                ),
                            );
                        }
                        if snap.hmaster != p.hmaster {
                            self.report(
                                c,
                                Rule::MasterStableDuringWait,
                                format!("{} -> {}", p.hmaster, snap.hmaster),
                            );
                        }
                    }
                }
            }
        }
        // Burst continuity rules evaluated on newly presented phases only
        // (wait-state repeats are covered by the stability rule above).
        let newly_presented = self.prev.as_ref().is_none_or(|p| p.hready);
        if newly_presented {
            match snap.htrans {
                HTrans::Seq => match self.burst_ctx {
                    Some(ctx) => {
                        if let Some(n) = ctx.burst.beats() {
                            if ctx.beats >= n {
                                self.report(
                                    c,
                                    Rule::BurstOverrun,
                                    format!("beat {} of a {}-beat {}", ctx.beats + 1, n, ctx.burst),
                                );
                            }
                        }
                        let expect = next_beat_addr(ctx.addr, ctx.size, ctx.burst);
                        if snap.haddr != expect
                            || snap.hsize != ctx.size
                            || snap.hwrite != ctx.write
                        {
                            self.report(
                                c,
                                Rule::SeqContinuity,
                                format!(
                                    "expected {:#x} {} {}, got {:#x} {} {}",
                                    expect,
                                    ctx.size,
                                    if ctx.write { "W" } else { "R" },
                                    snap.haddr,
                                    snap.hsize,
                                    if snap.hwrite { "W" } else { "R" },
                                ),
                            );
                        }
                    }
                    None => {
                        self.report(c, Rule::SeqContinuity, "SEQ without a burst".to_string());
                    }
                },
                HTrans::Busy => {
                    let in_burst = self
                        .burst_ctx
                        .is_some_and(|ctx| ctx.burst != HBurst::Single);
                    if !in_burst {
                        self.report(
                            c,
                            Rule::BusyOnlyInBurst,
                            "BUSY outside a multi-beat burst".to_string(),
                        );
                    }
                }
                HTrans::Idle | HTrans::NonSeq => {}
            }
        }
        // Update burst context on accepted phases.
        if snap.hready {
            match snap.htrans {
                HTrans::NonSeq | HTrans::Seq => {
                    let beats = match (snap.htrans, self.burst_ctx) {
                        (HTrans::Seq, Some(ctx)) => ctx.beats + 1,
                        _ => 1,
                    };
                    self.burst_ctx = Some(BurstCtx {
                        addr: snap.haddr,
                        size: snap.hsize,
                        burst: snap.hburst,
                        write: snap.hwrite,
                        beats,
                    });
                }
                HTrans::Idle => self.burst_ctx = None,
                HTrans::Busy => {}
            }
        }
        self.prev = Some(*snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MasterId, SlaveId};

    fn snap(cycle: u64) -> BusSnapshot {
        BusSnapshot {
            cycle,
            haddr: 0,
            htrans: HTrans::Idle,
            hwrite: false,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 0b0,
            hgrant: 0b1,
            hsel: 0b0,
        }
    }

    #[test]
    fn clean_idle_stream_has_no_violations() {
        let mut ck = ProtocolChecker::new();
        for i in 0..10 {
            ck.check(&snap(i));
        }
        assert!(ck.violations().is_empty());
        assert_eq!(ck.cycles_checked(), 10);
    }

    #[test]
    fn grant_must_be_one_hot() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.hgrant = 0b11;
        ck.check(&s);
        assert_eq!(ck.violations()[0].rule, Rule::GrantOneHot);
    }

    #[test]
    fn hsel_multi_hot_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.hsel = 0b11;
        ck.check(&s);
        assert_eq!(ck.violations()[0].rule, Rule::SelAtMostOneHot);
        let _ = SlaveId(0); // silence unused import in some cfg combinations
    }

    #[test]
    fn misaligned_transfer_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.htrans = HTrans::NonSeq;
        s.haddr = 0x2;
        s.hsize = HSize::Word;
        ck.check(&s);
        assert_eq!(ck.violations()[0].rule, Rule::Alignment);
    }

    #[test]
    fn address_change_during_wait_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s0 = snap(0);
        s0.htrans = HTrans::NonSeq;
        s0.haddr = 0x10;
        s0.hready = false; // wait state
        ck.check(&s0);
        let mut s1 = snap(1);
        s1.htrans = HTrans::NonSeq;
        s1.haddr = 0x20; // illegal change
        ck.check(&s1);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::AddressStableDuringWait));
    }

    #[test]
    fn idle_required_after_retry_first_cycle() {
        let mut ck = ProtocolChecker::new();
        let mut s0 = snap(0);
        s0.hready = false;
        s0.hresp = HResp::Retry;
        ck.check(&s0);
        let mut s1 = snap(1);
        s1.htrans = HTrans::NonSeq; // must be IDLE
        s1.hready = true;
        s1.hresp = HResp::Retry;
        ck.check(&s1);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::IdleAfterRetrySplit));
    }

    #[test]
    fn single_cycle_error_flagged() {
        let mut ck = ProtocolChecker::new();
        ck.check(&snap(0));
        let mut s1 = snap(1);
        s1.hresp = HResp::Error;
        s1.hready = true; // completes without the low-HREADY first cycle
        ck.check(&s1);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::TwoCycleResponse));
    }

    #[test]
    fn proper_two_cycle_error_accepted() {
        let mut ck = ProtocolChecker::new();
        let mut s0 = snap(0);
        s0.hready = false;
        s0.hresp = HResp::Error;
        ck.check(&s0);
        let mut s1 = snap(1);
        s1.hready = true;
        s1.hresp = HResp::Error;
        ck.check(&s1);
        assert!(ck.violations().is_empty());
    }

    #[test]
    fn seq_with_wrong_address_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s0 = snap(0);
        s0.htrans = HTrans::NonSeq;
        s0.haddr = 0x100;
        s0.hburst = HBurst::Incr4;
        ck.check(&s0);
        let mut s1 = snap(1);
        s1.htrans = HTrans::Seq;
        s1.haddr = 0x110; // expected 0x104
        s1.hburst = HBurst::Incr4;
        ck.check(&s1);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SeqContinuity));
    }

    #[test]
    fn seq_correct_address_accepted() {
        let mut ck = ProtocolChecker::new();
        let mut s0 = snap(0);
        s0.htrans = HTrans::NonSeq;
        s0.haddr = 0x100;
        s0.hburst = HBurst::Incr4;
        ck.check(&s0);
        let mut s1 = snap(1);
        s1.htrans = HTrans::Seq;
        s1.haddr = 0x104;
        s1.hburst = HBurst::Incr4;
        ck.check(&s1);
        assert!(ck.violations().is_empty(), "{:?}", ck.violations());
    }

    #[test]
    fn busy_outside_burst_flagged() {
        let mut ck = ProtocolChecker::new();
        ck.check(&snap(0)); // idle clears context
        let mut s1 = snap(1);
        s1.htrans = HTrans::Busy;
        ck.check(&s1);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::BusyOnlyInBurst));
    }

    #[test]
    fn seq_without_any_burst_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.htrans = HTrans::Seq;
        s.haddr = 0x4;
        ck.check(&s);
        assert!(ck
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SeqContinuity));
    }

    #[test]
    fn burst_overrun_flagged() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.htrans = HTrans::NonSeq;
        s.haddr = 0x100;
        s.hburst = HBurst::Incr4;
        ck.check(&s);
        for i in 1..=4u64 {
            let mut b = snap(i);
            b.htrans = HTrans::Seq;
            b.haddr = 0x100 + 4 * i as u32;
            b.hburst = HBurst::Incr4;
            ck.check(&b);
        }
        // Beats 2-4 were legal; the 5th SEQ overruns INCR4.
        let overruns: Vec<_> = ck
            .violations()
            .iter()
            .filter(|v| v.rule == Rule::BurstOverrun)
            .collect();
        assert_eq!(overruns.len(), 1, "{:?}", ck.violations());
        assert_eq!(overruns[0].cycle, 4);
    }

    #[test]
    fn exact_length_burst_is_clean() {
        let mut ck = ProtocolChecker::new();
        let mut s = snap(0);
        s.htrans = HTrans::NonSeq;
        s.hburst = HBurst::Wrap4;
        s.haddr = 0x8;
        ck.check(&s);
        let mut addr = 0x8;
        for i in 1..4u64 {
            addr = crate::burst::next_beat_addr(addr, HSize::Word, HBurst::Wrap4);
            let mut b = snap(i);
            b.htrans = HTrans::Seq;
            b.haddr = addr;
            b.hburst = HBurst::Wrap4;
            ck.check(&b);
        }
        assert!(ck.violations().is_empty(), "{:?}", ck.violations());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation {
            cycle: 7,
            rule: Rule::SeqContinuity,
            detail: "x".into(),
        };
        let s = v.to_string();
        assert!(s.contains("cycle 7"));
        assert!(s.contains("SEQ"));
    }
}
