//! The slave interface and built-in slave models.

use crate::lane::{from_lanes, to_lanes};
use crate::types::{AddressPhase, SlaveReply};

/// An AHB slave as seen by the bus fabric.
///
/// The fabric pipelines transfers: it calls [`AhbSlave::address_phase`] when
/// the decoder selects the slave and HREADY is high, then calls
/// [`AhbSlave::data_phase`] every following cycle until the slave replies
/// with something other than [`SlaveReply::Wait`]. The two-cycle wire
/// sequences for ERROR/RETRY/SPLIT are produced by the fabric, so slave
/// implementations reply with a plain [`SlaveReply`]. The `Any` supertrait
/// allows typed access through [`crate::AhbBus::slave_as`].
pub trait AhbSlave: std::any::Any {
    /// Latches an address phase (HSELx high, HREADY high, HTRANS NONSEQ/SEQ).
    fn address_phase(&mut self, phase: &AddressPhase);

    /// Produces this cycle's data-phase reply. `wdata` is the HWDATA bus
    /// (byte lanes per the transfer's address/size).
    fn data_phase(&mut self, wdata: u32) -> SlaveReply;

    /// HSPLITx: bit *i* set means master *i*'s split transfer can now
    /// complete. Called once per cycle.
    fn split_done(&mut self) -> u16 {
        0
    }

    /// Called once per bus clock cycle regardless of selection — for slaves
    /// with autonomous behaviour (timers, bridges clocking a sub-bus).
    fn tick(&mut self) {}

    /// Synchronous reset.
    fn reset(&mut self) {}

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "slave"
    }
}

/// A memory slave with configurable wait states.
///
/// The backing store covers `size` bytes (a power of two); bus addresses are
/// reduced modulo `size`, so the slave can sit in any decoder window.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddressPhase, AhbSlave, HBurst, HSize, HTrans, MasterId, MemorySlave,
///                    SlaveReply};
///
/// let mut mem = MemorySlave::new(0x1000, 0, 0);
/// let phase = AddressPhase {
///     master: MasterId(0), addr: 0x20, write: true, size: HSize::Word,
///     burst: HBurst::Single, trans: HTrans::NonSeq, mastlock: false,
/// };
/// mem.address_phase(&phase);
/// assert_eq!(mem.data_phase(0xCAFE_F00D), SlaveReply::Done { rdata: 0 });
/// assert_eq!(mem.peek_word(0x20), 0xCAFE_F00D);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySlave {
    data: Vec<u8>,
    wait_first: u32,
    wait_seq: u32,
    pending: Option<Pending>,
    reads: u64,
    writes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    phase: AddressPhase,
    waits_left: u32,
}

impl MemorySlave {
    /// Creates a zero-initialized memory of `size` bytes with `wait_first`
    /// wait states on NONSEQ beats and `wait_seq` on SEQ beats.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(size: usize, wait_first: u32, wait_seq: u32) -> Self {
        assert!(
            size > 0 && size.is_power_of_two(),
            "size must be a power of two"
        );
        MemorySlave {
            data: vec![0; size],
            wait_first,
            wait_seq,
            pending: None,
            reads: 0,
            writes: 0,
        }
    }

    fn local(&self, addr: u32) -> usize {
        (addr as usize) & (self.data.len() - 1)
    }

    /// Reads a 32-bit word directly from the backing store (test access).
    pub fn peek_word(&self, addr: u32) -> u32 {
        let i = self.local(addr & !3);
        u32::from_le_bytes([
            self.data[i],
            self.data[(i + 1) & (self.data.len() - 1)],
            self.data[(i + 2) & (self.data.len() - 1)],
            self.data[(i + 3) & (self.data.len() - 1)],
        ])
    }

    /// Writes a 32-bit word directly into the backing store (test access).
    pub fn poke_word(&mut self, addr: u32, value: u32) {
        let i = self.local(addr & !3);
        let len = self.data.len();
        for (k, b) in value.to_le_bytes().into_iter().enumerate() {
            self.data[(i + k) & (len - 1)] = b;
        }
    }

    /// Completed read transfers.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Completed write transfers.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl AhbSlave for MemorySlave {
    fn address_phase(&mut self, phase: &AddressPhase) {
        let waits = match phase.trans {
            crate::types::HTrans::Seq => self.wait_seq,
            _ => self.wait_first,
        };
        self.pending = Some(Pending {
            phase: *phase,
            waits_left: waits,
        });
    }

    fn data_phase(&mut self, wdata: u32) -> SlaveReply {
        let Some(p) = self.pending.as_mut() else {
            // Data phase without a latched address: harmless zero-wait OKAY.
            return SlaveReply::Done { rdata: 0 };
        };
        if p.waits_left > 0 {
            p.waits_left -= 1;
            return SlaveReply::Wait;
        }
        let phase = p.phase;
        self.pending = None;
        let word_addr = phase.addr & !3;
        if phase.write {
            let mask = crate::lane::lane_mask(phase.addr, phase.size);
            let old = self.peek_word(word_addr);
            self.poke_word(word_addr, (old & !mask) | (wdata & mask));
            self.writes += 1;
            SlaveReply::Done { rdata: 0 }
        } else {
            let word = self.peek_word(word_addr);
            self.reads += 1;
            // Drive only the addressed lanes; idle lanes read as zero.
            let value = from_lanes(word, phase.addr, phase.size);
            SlaveReply::Done {
                rdata: to_lanes(value, phase.addr, phase.size),
            }
        }
    }

    fn reset(&mut self) {
        self.pending = None;
    }

    fn name(&self) -> &str {
        "memory"
    }
}

/// A slave that fails every transfer with a (two-cycle) ERROR response.
#[derive(Debug, Clone, Default)]
pub struct ErrorSlave {
    pending: bool,
}

impl ErrorSlave {
    /// Creates an error slave.
    pub fn new() -> Self {
        ErrorSlave::default()
    }
}

impl AhbSlave for ErrorSlave {
    fn address_phase(&mut self, _phase: &AddressPhase) {
        self.pending = true;
    }

    fn data_phase(&mut self, _wdata: u32) -> SlaveReply {
        if self.pending {
            self.pending = false;
            SlaveReply::Error
        } else {
            SlaveReply::Done { rdata: 0 }
        }
    }

    fn name(&self) -> &str {
        "error"
    }
}

/// A slave exercising the SPLIT protocol: the **first** access from each
/// master is split and completes `delay` cycles later (the slave raises the
/// master's HSPLIT bit); the retried access is served from backing memory.
#[derive(Debug, Clone)]
pub struct SplitSlave {
    delay: u32,
    /// Per-master countdown until HSPLIT is raised.
    countdown: Vec<Option<u32>>,
    /// Per-master: the retried access will now be served.
    ready: Vec<bool>,
    pending: Option<AddressPhase>,
    mem: MemorySlave,
    splits_issued: u64,
}

impl SplitSlave {
    /// Creates a split slave over `size` bytes of memory, releasing split
    /// masters after `delay` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two, or `n_masters == 0`.
    pub fn new(size: usize, n_masters: usize, delay: u32) -> Self {
        assert!(n_masters > 0, "need at least one master");
        SplitSlave {
            delay,
            countdown: vec![None; n_masters],
            ready: vec![false; n_masters],
            pending: None,
            mem: MemorySlave::new(size, 0, 0),
            splits_issued: 0,
        }
    }

    /// Number of SPLIT responses issued.
    pub fn splits_issued(&self) -> u64 {
        self.splits_issued
    }
}

impl AhbSlave for SplitSlave {
    fn address_phase(&mut self, phase: &AddressPhase) {
        self.pending = Some(*phase);
        if self.ready[phase.master.index()] {
            self.mem.address_phase(phase);
        }
    }

    fn data_phase(&mut self, wdata: u32) -> SlaveReply {
        let Some(phase) = self.pending.take() else {
            return SlaveReply::Done { rdata: 0 };
        };
        let m = phase.master.index();
        if self.ready[m] {
            self.ready[m] = false;
            self.mem.data_phase(wdata)
        } else {
            // Idempotent: a premature retry (e.g. from a split-masked
            // default master) must not restart the countdown, or the
            // transfer would never complete.
            if self.countdown[m].is_none() {
                self.countdown[m] = Some(self.delay);
                self.splits_issued += 1;
            }
            SlaveReply::Split
        }
    }

    fn split_done(&mut self) -> u16 {
        let mut mask = 0u16;
        for (i, c) in self.countdown.iter_mut().enumerate() {
            match c {
                Some(0) => {
                    *c = None;
                    self.ready[i] = true;
                    mask |= 1 << i;
                }
                Some(n) => *n -= 1,
                None => {}
            }
        }
        mask
    }

    fn reset(&mut self) {
        self.pending = None;
        self.countdown.iter_mut().for_each(|c| *c = None);
        self.ready.iter_mut().for_each(|r| *r = false);
        self.mem.reset();
    }

    fn name(&self) -> &str {
        "split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HBurst, HSize, HTrans, MasterId};

    fn phase(addr: u32, write: bool, size: HSize, trans: HTrans) -> AddressPhase {
        AddressPhase {
            master: MasterId(0),
            addr,
            write,
            size,
            burst: HBurst::Single,
            trans,
            mastlock: false,
        }
    }

    #[test]
    fn memory_word_write_then_read() {
        let mut m = MemorySlave::new(256, 0, 0);
        m.address_phase(&phase(0x10, true, HSize::Word, HTrans::NonSeq));
        assert_eq!(m.data_phase(0x1122_3344), SlaveReply::Done { rdata: 0 });
        m.address_phase(&phase(0x10, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(m.data_phase(0), SlaveReply::Done { rdata: 0x1122_3344 });
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn memory_byte_lanes_update_only_addressed_byte() {
        let mut m = MemorySlave::new(64, 0, 0);
        m.poke_word(0x0, 0xAABB_CCDD);
        m.address_phase(&phase(0x1, true, HSize::Byte, HTrans::NonSeq));
        // Byte for address 1 travels on lanes 15:8.
        let reply = m.data_phase(0x0000_7700);
        assert_eq!(reply, SlaveReply::Done { rdata: 0 });
        assert_eq!(m.peek_word(0x0), 0xAABB_77DD);
    }

    #[test]
    fn memory_halfword_lanes() {
        let mut m = MemorySlave::new(64, 0, 0);
        m.address_phase(&phase(0x6, true, HSize::Half, HTrans::NonSeq));
        let _ = m.data_phase(to_lanes(0xBEEF, 0x6, HSize::Half));
        m.address_phase(&phase(0x6, false, HSize::Half, HTrans::NonSeq));
        let reply = m.data_phase(0);
        assert_eq!(
            reply,
            SlaveReply::Done {
                rdata: to_lanes(0xBEEF, 0x6, HSize::Half)
            }
        );
    }

    #[test]
    fn memory_wait_states_count_down() {
        let mut m = MemorySlave::new(64, 2, 1);
        m.address_phase(&phase(0x0, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(m.data_phase(0), SlaveReply::Wait);
        assert_eq!(m.data_phase(0), SlaveReply::Wait);
        assert!(matches!(m.data_phase(0), SlaveReply::Done { .. }));
        // SEQ beats use the shorter latency.
        m.address_phase(&phase(0x4, false, HSize::Word, HTrans::Seq));
        assert_eq!(m.data_phase(0), SlaveReply::Wait);
        assert!(matches!(m.data_phase(0), SlaveReply::Done { .. }));
    }

    #[test]
    fn memory_mirrors_across_window() {
        let mut m = MemorySlave::new(16, 0, 0);
        m.address_phase(&phase(0x1000, true, HSize::Word, HTrans::NonSeq));
        let _ = m.data_phase(0x55);
        assert_eq!(m.peek_word(0x0), 0x55, "0x1000 mod 16 = 0");
    }

    #[test]
    fn error_slave_always_errors_transfers() {
        let mut s = ErrorSlave::new();
        s.address_phase(&phase(0, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(s.data_phase(0), SlaveReply::Error);
        // Without a pending transfer it is quiet.
        assert!(matches!(s.data_phase(0), SlaveReply::Done { .. }));
    }

    #[test]
    fn split_slave_splits_then_serves() {
        let mut s = SplitSlave::new(64, 2, 3);
        s.mem.poke_word(0x8, 0x1234_5678);
        // First access: split.
        s.address_phase(&phase(0x8, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(s.data_phase(0), SlaveReply::Split);
        assert_eq!(s.splits_issued(), 1);
        // HSPLIT raised after `delay` calls.
        assert_eq!(s.split_done(), 0);
        assert_eq!(s.split_done(), 0);
        assert_eq!(s.split_done(), 0);
        assert_eq!(s.split_done(), 0b01);
        // Retried access is served.
        s.address_phase(&phase(0x8, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(s.data_phase(0), SlaveReply::Done { rdata: 0x1234_5678 });
    }

    #[test]
    fn split_slave_tracks_masters_independently() {
        let mut s = SplitSlave::new(64, 2, 1);
        let mut p1 = phase(0x0, false, HSize::Word, HTrans::NonSeq);
        p1.master = MasterId(1);
        s.address_phase(&p1);
        assert_eq!(s.data_phase(0), SlaveReply::Split);
        s.address_phase(&phase(0x4, false, HSize::Word, HTrans::NonSeq));
        assert_eq!(s.data_phase(0), SlaveReply::Split);
        assert_eq!(s.split_done(), 0);
        assert_eq!(s.split_done(), 0b11, "both masters released together");
    }

    #[test]
    fn reset_clears_pending_state() {
        let mut m = MemorySlave::new(64, 3, 3);
        m.address_phase(&phase(0, false, HSize::Word, HTrans::NonSeq));
        m.reset();
        // No pending transfer: immediate OKAY.
        assert!(matches!(m.data_phase(0), SlaveReply::Done { .. }));
    }
}
