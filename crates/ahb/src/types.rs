//! Core AMBA AHB protocol types (AMBA Specification rev 2.0).

use std::fmt;

/// Index of a master attached to the bus (0 is the highest priority and,
/// by default, the bus's default master).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MasterId(pub u8);

impl MasterId {
    /// The index as a usize (for slicing).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Index of a slave attached to the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveId(pub u8);

impl SlaveId {
    /// The index as a usize (for slicing).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// HTRANS\[1:0\] — transfer type driven by the granted master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HTrans {
    /// No transfer this cycle.
    #[default]
    Idle,
    /// Burst continues but the master needs a pause; no transfer this cycle.
    Busy,
    /// First transfer of a burst, or a single transfer.
    NonSeq,
    /// Subsequent transfer of a burst; address is derived from the previous
    /// beat.
    Seq,
}

impl HTrans {
    /// The two-bit wire encoding from the AMBA specification.
    pub fn bits(self) -> u8 {
        match self {
            HTrans::Idle => 0b00,
            HTrans::Busy => 0b01,
            HTrans::NonSeq => 0b10,
            HTrans::Seq => 0b11,
        }
    }

    /// True for NONSEQ and SEQ: a real data transfer will occur.
    pub fn is_transfer(self) -> bool {
        matches!(self, HTrans::NonSeq | HTrans::Seq)
    }
}

impl fmt::Display for HTrans {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HTrans::Idle => "IDLE",
            HTrans::Busy => "BUSY",
            HTrans::NonSeq => "NONSEQ",
            HTrans::Seq => "SEQ",
        };
        f.write_str(s)
    }
}

/// HBURST\[2:0\] — burst kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HBurst {
    /// Single transfer.
    #[default]
    Single,
    /// Incrementing burst of unspecified length.
    Incr,
    /// 4-beat wrapping burst.
    Wrap4,
    /// 4-beat incrementing burst.
    Incr4,
    /// 8-beat wrapping burst.
    Wrap8,
    /// 8-beat incrementing burst.
    Incr8,
    /// 16-beat wrapping burst.
    Wrap16,
    /// 16-beat incrementing burst.
    Incr16,
}

impl HBurst {
    /// The three-bit wire encoding from the AMBA specification.
    pub fn bits(self) -> u8 {
        match self {
            HBurst::Single => 0b000,
            HBurst::Incr => 0b001,
            HBurst::Wrap4 => 0b010,
            HBurst::Incr4 => 0b011,
            HBurst::Wrap8 => 0b100,
            HBurst::Incr8 => 0b101,
            HBurst::Wrap16 => 0b110,
            HBurst::Incr16 => 0b111,
        }
    }

    /// Number of beats for fixed-length bursts; `None` for SINGLE/INCR.
    pub fn beats(self) -> Option<usize> {
        match self {
            HBurst::Single | HBurst::Incr => None,
            HBurst::Wrap4 | HBurst::Incr4 => Some(4),
            HBurst::Wrap8 | HBurst::Incr8 => Some(8),
            HBurst::Wrap16 | HBurst::Incr16 => Some(16),
        }
    }

    /// True for the wrapping variants.
    pub fn is_wrapping(self) -> bool {
        matches!(self, HBurst::Wrap4 | HBurst::Wrap8 | HBurst::Wrap16)
    }
}

impl fmt::Display for HBurst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HBurst::Single => "SINGLE",
            HBurst::Incr => "INCR",
            HBurst::Wrap4 => "WRAP4",
            HBurst::Incr4 => "INCR4",
            HBurst::Wrap8 => "WRAP8",
            HBurst::Incr8 => "INCR8",
            HBurst::Wrap16 => "WRAP16",
            HBurst::Incr16 => "INCR16",
        };
        f.write_str(s)
    }
}

/// HSIZE\[2:0\] — transfer size. Only sizes up to the 32-bit data bus of this
/// model are representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HSize {
    /// 8-bit transfer.
    Byte,
    /// 16-bit transfer.
    Half,
    /// 32-bit transfer.
    #[default]
    Word,
}

impl HSize {
    /// The three-bit wire encoding.
    pub fn bits(self) -> u8 {
        match self {
            HSize::Byte => 0b000,
            HSize::Half => 0b001,
            HSize::Word => 0b010,
        }
    }

    /// Transfer width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            HSize::Byte => 1,
            HSize::Half => 2,
            HSize::Word => 4,
        }
    }
}

impl fmt::Display for HSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// HRESP\[1:0\] — slave response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HResp {
    /// Transfer completed (or is completing) successfully.
    #[default]
    Okay,
    /// Transfer failed.
    Error,
    /// Master must retry the transfer; arbitration continues normally.
    Retry,
    /// Master must retry; the arbiter masks the master until the slave
    /// signals HSPLIT.
    Split,
}

impl HResp {
    /// The two-bit wire encoding.
    pub fn bits(self) -> u8 {
        match self {
            HResp::Okay => 0b00,
            HResp::Error => 0b01,
            HResp::Retry => 0b10,
            HResp::Split => 0b11,
        }
    }
}

impl fmt::Display for HResp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HResp::Okay => "OKAY",
            HResp::Error => "ERROR",
            HResp::Retry => "RETRY",
            HResp::Split => "SPLIT",
        };
        f.write_str(s)
    }
}

/// The signals a master drives each cycle (its address-phase outputs plus
/// arbitration requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MasterOut {
    /// HBUSREQx — the master wants the bus.
    pub busreq: bool,
    /// HLOCKx — the master wants its next transfers to be indivisible.
    pub lock: bool,
    /// HTRANS.
    pub trans: HTrans,
    /// HADDR.
    pub addr: u32,
    /// HWRITE.
    pub write: bool,
    /// HSIZE.
    pub size: HSize,
    /// HBURST.
    pub burst: HBurst,
    /// HWDATA for the transfer currently in its data phase.
    pub wdata: u32,
}

/// The bus state a master samples at a clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterIn {
    /// True iff this master owns the address phase this cycle.
    pub grant: bool,
    /// HREADY sampled at the edge (completion of the previous data phase).
    pub ready: bool,
    /// HRESP sampled at the edge.
    pub resp: HResp,
    /// HRDATA sampled at the edge (valid when `ready` and the completed
    /// transfer was a read).
    pub rdata: u32,
}

impl Default for MasterIn {
    fn default() -> Self {
        MasterIn {
            grant: false,
            ready: true,
            resp: HResp::Okay,
            rdata: 0,
        }
    }
}

/// The address-phase information a selected slave latches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressPhase {
    /// The master performing the transfer (HMASTER).
    pub master: MasterId,
    /// HADDR.
    pub addr: u32,
    /// HWRITE.
    pub write: bool,
    /// HSIZE.
    pub size: HSize,
    /// HBURST.
    pub burst: HBurst,
    /// HTRANS (NONSEQ or SEQ).
    pub trans: HTrans,
    /// HMASTLOCK — the transfer is part of a locked sequence.
    pub mastlock: bool,
}

/// A slave's reply for one data-phase cycle. The fabric expands `Error`,
/// `Retry` and `Split` into the protocol's two-cycle response sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaveReply {
    /// Insert a wait state (HREADY low, HRESP OKAY).
    Wait,
    /// Complete successfully; `rdata` is returned for reads (ignored for
    /// writes).
    Done {
        /// HRDATA value.
        rdata: u32,
    },
    /// Fail the transfer (two-cycle ERROR response).
    Error,
    /// Ask the master to retry (two-cycle RETRY response).
    Retry,
    /// Split the transfer: retry later, masked until HSPLIT (two-cycle
    /// SPLIT response).
    Split,
}

/// A full snapshot of the AHB wires during one bus cycle — the input to the
/// power-analysis instrumentation (the paper's `get_activity` hook observes
/// exactly this).
///
/// The per-master and per-slave wires (`hbusreq`, `hgrant`, `hsel`) are
/// packed little-endian into `u32` words — bit `i` is wire `i` — so the
/// snapshot is `Copy`, observation never allocates, and probes can take
/// Hamming distances with a single `xor`/`count_ones`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusSnapshot {
    /// Cycle counter (address phases since reset).
    pub cycle: u64,
    /// HADDR driven by the address-phase owner.
    pub haddr: u32,
    /// HTRANS.
    pub htrans: HTrans,
    /// HWRITE.
    pub hwrite: bool,
    /// HSIZE.
    pub hsize: HSize,
    /// HBURST.
    pub hburst: HBurst,
    /// HWDATA driven by the data-phase owner.
    pub hwdata: u32,
    /// HRDATA driven by the selected slave (valid when `hready`).
    pub hrdata: u32,
    /// HREADY — the current data phase completes this cycle.
    pub hready: bool,
    /// HRESP.
    pub hresp: HResp,
    /// HMASTER — current address-phase owner.
    pub hmaster: MasterId,
    /// HMASTLOCK.
    pub hmastlock: bool,
    /// HBUSREQx for every master, packed (bit `i` = master `i`).
    pub hbusreq: u32,
    /// HGRANTx for every master, packed one-hot (bit `i` = master `i`).
    pub hgrant: u32,
    /// HSELx for every slave, packed one-hot or all-zero for unmapped/idle
    /// (bit `i` = slave `i`).
    pub hsel: u32,
}

impl BusSnapshot {
    /// The control word observed by the M2S multiplexer besides the address:
    /// trans, write, size, burst packed into one integer (for Hamming
    /// distances).
    pub fn control_bits(&self) -> u32 {
        u32::from(self.htrans.bits())
            | (u32::from(self.hwrite) << 2)
            | (u32::from(self.hsize.bits()) << 3)
            | (u32::from(self.hburst.bits()) << 6)
    }

    /// One-hot HSEL as an integer (the packed word itself).
    pub fn hsel_bits(&self) -> u32 {
        self.hsel
    }

    /// One-hot HGRANT as an integer (the packed word itself).
    pub fn hgrant_bits(&self) -> u32 {
        self.hgrant
    }

    /// HBUSREQ for master `i` (`false` for out-of-range indices).
    pub fn hbusreq_bit(&self, i: usize) -> bool {
        i < 32 && (self.hbusreq >> i) & 1 == 1
    }

    /// HGRANT for master `i` (`false` for out-of-range indices).
    pub fn hgrant_bit(&self, i: usize) -> bool {
        i < 32 && (self.hgrant >> i) & 1 == 1
    }

    /// HSEL for slave `i` (`false` for out-of-range indices).
    pub fn hsel_bit(&self, i: usize) -> bool {
        i < 32 && (self.hsel >> i) & 1 == 1
    }
}

/// Packs an iterator of wire levels into a little-endian bitmask word (bit
/// `i` = the `i`-th yielded level). Convenience for tests and generators
/// that think in per-wire terms.
///
/// # Panics
///
/// Panics if more than 32 levels are yielded.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::pack_wires;
/// assert_eq!(pack_wires([true, false, true]), 0b101);
/// ```
pub fn pack_wires<I: IntoIterator<Item = bool>>(wires: I) -> u32 {
    let mut word = 0u32;
    for (i, level) in wires.into_iter().enumerate() {
        assert!(i < 32, "at most 32 wires fit a packed word");
        word |= u32::from(level) << i;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htrans_encoding_matches_spec() {
        assert_eq!(HTrans::Idle.bits(), 0b00);
        assert_eq!(HTrans::Busy.bits(), 0b01);
        assert_eq!(HTrans::NonSeq.bits(), 0b10);
        assert_eq!(HTrans::Seq.bits(), 0b11);
        assert!(HTrans::NonSeq.is_transfer());
        assert!(HTrans::Seq.is_transfer());
        assert!(!HTrans::Idle.is_transfer());
        assert!(!HTrans::Busy.is_transfer());
    }

    #[test]
    fn hburst_encoding_and_beats() {
        assert_eq!(HBurst::Single.bits(), 0b000);
        assert_eq!(HBurst::Incr16.bits(), 0b111);
        assert_eq!(HBurst::Single.beats(), None);
        assert_eq!(HBurst::Incr.beats(), None);
        assert_eq!(HBurst::Wrap4.beats(), Some(4));
        assert_eq!(HBurst::Incr8.beats(), Some(8));
        assert_eq!(HBurst::Wrap16.beats(), Some(16));
        assert!(HBurst::Wrap8.is_wrapping());
        assert!(!HBurst::Incr8.is_wrapping());
    }

    #[test]
    fn hsize_bytes() {
        assert_eq!(HSize::Byte.bytes(), 1);
        assert_eq!(HSize::Half.bytes(), 2);
        assert_eq!(HSize::Word.bytes(), 4);
        assert_eq!(HSize::Word.bits(), 0b010);
    }

    #[test]
    fn hresp_encoding() {
        assert_eq!(HResp::Okay.bits(), 0b00);
        assert_eq!(HResp::Error.bits(), 0b01);
        assert_eq!(HResp::Retry.bits(), 0b10);
        assert_eq!(HResp::Split.bits(), 0b11);
    }

    #[test]
    fn displays_are_speclike() {
        assert_eq!(HTrans::NonSeq.to_string(), "NONSEQ");
        assert_eq!(HBurst::Wrap8.to_string(), "WRAP8");
        assert_eq!(HResp::Split.to_string(), "SPLIT");
        assert_eq!(HSize::Word.to_string(), "4B");
        assert_eq!(MasterId(2).to_string(), "M2");
        assert_eq!(SlaveId(1).to_string(), "S1");
    }

    #[test]
    fn snapshot_bit_helpers() {
        let snap = BusSnapshot {
            cycle: 0,
            haddr: 0,
            htrans: HTrans::NonSeq,
            hwrite: true,
            hsize: HSize::Word,
            hburst: HBurst::Incr4,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: pack_wires([true, false]),
            hgrant: pack_wires([true, false]),
            hsel: pack_wires([false, true, false]),
        };
        // trans=10 (2), write=1<<2, size=010<<3, burst=011<<6
        assert_eq!(
            snap.control_bits(),
            0b10 | (1 << 2) | (0b010 << 3) | (0b011 << 6)
        );
        assert_eq!(snap.hsel_bits(), 0b010);
        assert_eq!(snap.hgrant_bits(), 0b01);
        assert!(snap.hbusreq_bit(0));
        assert!(!snap.hbusreq_bit(1));
        assert!(snap.hgrant_bit(0));
        assert!(snap.hsel_bit(1));
        assert!(!snap.hsel_bit(0));
        assert!(!snap.hsel_bit(64), "out-of-range wires read as low");
    }

    #[test]
    fn pack_wires_is_little_endian() {
        assert_eq!(pack_wires([]), 0);
        assert_eq!(pack_wires([true]), 1);
        assert_eq!(pack_wires([false, true, true]), 0b110);
    }

    #[test]
    fn default_master_in_is_ready_okay() {
        let d = MasterIn::default();
        assert!(d.ready);
        assert!(!d.grant);
        assert_eq!(d.resp, HResp::Okay);
    }
}
