//! # ahbpower-ahb — a cycle-accurate AMBA 2.0 AHB bus model
//!
//! This crate is the executable specification of the Advanced
//! High-performance Bus that the DATE'03 power-analysis methodology is
//! applied to. It models the protocol at per-cycle wire granularity:
//!
//! - pipelined **address / data phases** with HREADY wait states;
//! - **transfer types** IDLE/BUSY/NONSEQ/SEQ and all **burst** kinds
//!   (SINGLE, INCR, INCR4/8/16, WRAP4/8/16) including the 1 KB rule;
//! - **two-cycle ERROR/RETRY/SPLIT** responses, SPLIT masking in the
//!   arbiter, and locked (non-interruptible) sequences;
//! - a central **arbiter** (fixed-priority or round-robin, with a default
//!   master), **address decoder** with default-slave behaviour, and the
//!   M2S/S2M **multiplexers** implied by the single-bus topology;
//! - a passive [`ProtocolChecker`] that audits every cycle;
//! - a per-cycle [`BusSnapshot`] of every wire — the hook the `ahbpower`
//!   crate's instrumentation observes (the paper's `get_activity`).
//!
//! ## Quick start
//!
//! ```
//! use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
//!
//! let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
//!     .master(Box::new(ScriptedMaster::new(vec![
//!         Op::write(0x10, 0xCAFE),
//!         Op::read(0x10),
//!     ])))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
//!     .build()?;
//! bus.run_until_done(100);
//! let m = bus.master_as::<ScriptedMaster>(0).expect("master 0 is scripted");
//! assert_eq!(m.reads().next(), Some((0x10, 0xCAFE)));
//! # Ok::<(), ahbpower_ahb::BuildBusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apb;
mod arbiter;
mod bridge;
mod burst;
mod bus;
mod checker;
mod decoder;
mod lane;
mod lifecycle;
mod master;
mod perf;
mod script;
mod slave;
mod types;
mod vcd;

pub use apb::{ApbBridge, ApbPeripheral, ApbSnapshot, ApbStats, ApbTimer, RegisterFile};
pub use arbiter::{Arbiter, Arbitration};
pub use bridge::{AhbToAhbBridge, PortHandle};
pub use burst::{
    burst_addresses, crosses_1kb_boundary, incr_crosses_1kb_boundary, is_aligned, next_beat_addr,
};
pub use bus::{AhbBus, AhbBusBuilder, BuildBusError, BusStats};
pub use checker::{ProtocolChecker, Rule, Violation};
pub use decoder::{AddrRange, AddressMap, BuildMapError};
pub use lane::{from_lanes, lane_mask, to_lanes};
pub use lifecycle::{LifecycleTap, TxnEvent};
pub use master::{AhbMaster, IdleMaster, Op, ScriptedMaster};
pub use perf::{
    BusPerfAnalyzer, CycleHistogram, MasterPerf, ARBITRATION_LATENCY_BOUNDS, BURST_BEATS_BOUNDS,
};
pub use script::{format_ops, parse_ops, ParseOpsError};
pub use slave::{AhbSlave, ErrorSlave, MemorySlave, SplitSlave};
pub use types::{
    pack_wires, AddressPhase, BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId, MasterIn,
    MasterOut, SlaveId, SlaveReply,
};
pub use vcd::BusTracer;
