//! Transaction-lifecycle tap: turns per-cycle wire snapshots into causal
//! transfer events.
//!
//! [`LifecycleTap`] is a passive observer in the mould of
//! [`crate::BusPerfAnalyzer`]: fed every [`BusSnapshot`], it reconstructs
//! the life of each bus transaction — the HBUSREQ assertion, the arbiter's
//! HGRANT edge, the NONSEQ address phase that opens a burst, HREADY
//! stalls, per-beat data-phase completions and the final completion — and
//! reports them as [`TxnEvent`]s through a caller-supplied sink. It keeps
//! no per-transaction storage itself; the `ahbpower` crate's `TxnTracer`
//! consumes the events and attaches energy, so this tap stays a pure
//! protocol-layer concern.

use crate::types::{BusSnapshot, HBurst, HResp, HTrans, MasterId, SlaveId};

/// One observed transaction-lifecycle event. Every event belongs to the
/// cycle of the snapshot that produced it (`BusSnapshot::cycle`).
///
/// Events for one transaction arrive in causal order: `Requested` →
/// `Granted` → `Started` → (`Stalled` | `BeatDone`)* → `Completed`.
/// Request/grant events are per *master*, not per transaction: a master
/// holding HBUSREQ across several back-to-back bursts produces one
/// `Requested` edge for the whole run of bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// A master newly asserted HBUSREQ (rising edge of its request line).
    Requested {
        /// The requesting master.
        master: MasterId,
    },
    /// The arbiter's HGRANT reached a master (rising edge of its grant
    /// line). `wait_cycles` counts cycles since the matching `Requested`
    /// edge, or 0 for an unrequested (parked/default) grant.
    Granted {
        /// The granted master.
        master: MasterId,
        /// Cycles the master waited between request and grant.
        wait_cycles: u64,
    },
    /// A NONSEQ address phase opened a transaction.
    Started {
        /// The address-phase owner.
        master: MasterId,
        /// The decoded slave, or `None` when no HSEL line is asserted
        /// (the transfer goes to the default slave).
        slave: Option<SlaveId>,
        /// The first beat's address.
        addr: u32,
        /// `true` for a write transfer.
        write: bool,
        /// The burst kind announced with the address.
        burst: HBurst,
    },
    /// The selected slave stretched the open data phase (HREADY low with
    /// an OKAY response). Emitted once per wait-state cycle.
    Stalled {
        /// The master whose data phase is stalled.
        master: MasterId,
    },
    /// One beat's data phase completed (HREADY high). `okay` is false for
    /// beats ending in ERROR/RETRY/SPLIT.
    BeatDone {
        /// The master whose beat completed.
        master: MasterId,
        /// Whether the beat ended with an OKAY response.
        okay: bool,
    },
    /// The open transaction's final beat completed (or the transaction
    /// was abandoned — SPLIT/RETRY hand-back, or end of trace).
    Completed {
        /// The master whose transaction completed.
        master: MasterId,
    },
}

impl TxnEvent {
    /// The master this event belongs to — every lifecycle event is
    /// attributed to exactly one master, whatever its kind. Event
    /// consumers (the power tracer, the structured event bus) use this
    /// to index per-master accumulators without matching every variant.
    pub fn master(&self) -> MasterId {
        match *self {
            TxnEvent::Requested { master }
            | TxnEvent::Granted { master, .. }
            | TxnEvent::Started { master, .. }
            | TxnEvent::Stalled { master }
            | TxnEvent::BeatDone { master, .. }
            | TxnEvent::Completed { master } => master,
        }
    }

    /// The event's stable kind name (what structured exports key on).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TxnEvent::Requested { .. } => "Requested",
            TxnEvent::Granted { .. } => "Granted",
            TxnEvent::Started { .. } => "Started",
            TxnEvent::Stalled { .. } => "Stalled",
            TxnEvent::BeatDone { .. } => "BeatDone",
            TxnEvent::Completed { .. } => "Completed",
        }
    }
}

/// Derives [`TxnEvent`]s from the snapshot stream.
///
/// The address/data pipeline bookkeeping mirrors
/// [`crate::BusPerfAnalyzer`]: the data-phase owner is latched on every
/// `hready && htrans.is_transfer()` cycle and resolved on the next
/// HREADY-high cycle; request-to-grant waits are measured per master from
/// the HBUSREQ rising edge.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans, LifecycleTap, MasterId, TxnEvent};
///
/// let snap = BusSnapshot {
///     cycle: 0, haddr: 0x10, htrans: HTrans::NonSeq, hwrite: true,
///     hsize: HSize::Word, hburst: HBurst::Single, hwdata: 0, hrdata: 0,
///     hready: true, hresp: HResp::Okay, hmaster: MasterId(0),
///     hmastlock: false, hbusreq: 0b1, hgrant: 0b1, hsel: 0b1,
/// };
/// let mut tap = LifecycleTap::new(1);
/// let mut events = Vec::new();
/// tap.observe(&snap, |e| events.push(e));
/// assert!(events.iter().any(|e| matches!(e, TxnEvent::Started { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct LifecycleTap {
    /// Cycle each master's HBUSREQ rose, `None` while deasserted.
    request_since: Vec<Option<u64>>,
    /// Previous cycle's packed HGRANT word (for edge detection).
    prev_hgrant: u32,
    /// Master whose transfer is in the data phase this cycle.
    dp_master: Option<MasterId>,
    /// Master owning the currently open burst (NONSEQ seen, last beat
    /// not yet completed).
    burst_owner: Option<MasterId>,
}

impl LifecycleTap {
    /// Creates a tap for a bus with `n_masters` masters.
    pub fn new(n_masters: usize) -> Self {
        LifecycleTap {
            request_since: vec![None; n_masters],
            prev_hgrant: 0,
            dp_master: None,
            burst_owner: None,
        }
    }

    /// Observes one cycle, emitting each derived event through `emit` in
    /// causal order (grant edges before phase events).
    pub fn observe(&mut self, snap: &BusSnapshot, mut emit: impl FnMut(TxnEvent)) {
        for i in 0..self.request_since.len() {
            let master = MasterId(i as u8);
            let requested = snap.hbusreq_bit(i);
            if requested && self.request_since[i].is_none() {
                self.request_since[i] = Some(snap.cycle);
                emit(TxnEvent::Requested { master });
            }
            let had_grant = (self.prev_hgrant >> i) & 1 == 1;
            if snap.hgrant_bit(i) && !had_grant {
                let wait_cycles =
                    self.request_since[i].map_or(0, |since| snap.cycle.saturating_sub(since));
                emit(TxnEvent::Granted {
                    master,
                    wait_cycles,
                });
            }
            if !requested {
                self.request_since[i] = None;
            }
        }
        self.prev_hgrant = snap.hgrant_bits();
        self.observe_transfers(snap, emit);
    }

    /// Transfer-phase subset of [`LifecycleTap::observe`]: emits only
    /// `Started`/`BeatDone`/`Stalled`/`Completed`, skipping the
    /// per-master request/grant scan. For hot-path consumers that ignore
    /// arbitration events (the telemetry event tap publishes only
    /// completions); a tap driven exclusively through this method simply
    /// leaves its request-tracking state idle. Do not interleave with
    /// [`LifecycleTap::observe`] on the same tap — skipped cycles would
    /// misreport `Granted::wait_cycles`.
    #[inline]
    pub fn observe_transfers(&mut self, snap: &BusSnapshot, mut emit: impl FnMut(TxnEvent)) {
        if snap.hready {
            // The pending data phase resolves this cycle.
            if let Some(master) = self.dp_master.take() {
                emit(TxnEvent::BeatDone {
                    master,
                    okay: snap.hresp == HResp::Okay,
                });
                if self.burst_owner == Some(master) {
                    // The burst continues iff the same master drives a
                    // SEQ/BUSY address phase in this very cycle.
                    let continues =
                        snap.hmaster == master && matches!(snap.htrans, HTrans::Seq | HTrans::Busy);
                    if !continues {
                        self.burst_owner = None;
                        emit(TxnEvent::Completed { master });
                    }
                }
            }
            if snap.htrans == HTrans::NonSeq {
                // Safety net: a burst abandoned without its final beat
                // (SPLIT/RETRY hand-back) is force-completed before the
                // next one opens.
                if let Some(abandoned) = self.burst_owner.take() {
                    emit(TxnEvent::Completed { master: abandoned });
                }
                let slave = slave_of(snap.hsel_bits());
                emit(TxnEvent::Started {
                    master: snap.hmaster,
                    slave,
                    addr: snap.haddr,
                    write: snap.hwrite,
                    burst: snap.hburst,
                });
                self.burst_owner = Some(snap.hmaster);
            }
            if snap.htrans.is_transfer() {
                self.dp_master = Some(snap.hmaster);
            }
        } else if snap.hresp == HResp::Okay {
            // A wait state (first cycles of ERROR/RETRY/SPLIT also hold
            // HREADY low, but those are response cycles, not stalls).
            if let Some(master) = self.dp_master {
                emit(TxnEvent::Stalled { master });
            }
        }
    }

    /// Flushes the transaction still in flight at end of trace, if any.
    pub fn finish(&mut self, mut emit: impl FnMut(TxnEvent)) {
        self.dp_master = None;
        if let Some(master) = self.burst_owner.take() {
            emit(TxnEvent::Completed { master });
        }
    }
}

/// The lowest asserted HSEL line, or `None` for the default slave.
fn slave_of(hsel: u32) -> Option<SlaveId> {
    (hsel != 0).then(|| SlaveId(hsel.trailing_zeros() as u8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HSize;

    fn snap(cycle: u64) -> BusSnapshot {
        BusSnapshot {
            cycle,
            haddr: 0,
            htrans: HTrans::Idle,
            hwrite: false,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 0,
            hgrant: 0b1,
            hsel: 0,
        }
    }

    fn collect(tap: &mut LifecycleTap, s: &BusSnapshot) -> Vec<TxnEvent> {
        let mut events = Vec::new();
        tap.observe(s, |e| events.push(e));
        events
    }

    #[test]
    fn single_write_produces_full_lifecycle() {
        let mut tap = LifecycleTap::new(2);
        let mut all = Vec::new();
        // Cycle 0: master 1 requests; master 0 holds the parked grant.
        let mut s = snap(0);
        s.hbusreq = 0b10;
        all.extend(collect(&mut tap, &s));
        // Cycle 1: grant moves to master 1.
        let mut s = snap(1);
        s.hbusreq = 0b10;
        s.hgrant = 0b10;
        all.extend(collect(&mut tap, &s));
        // Cycle 2: master 1 drives a NONSEQ write to slave 1.
        let mut s = snap(2);
        s.hgrant = 0b10;
        s.hmaster = MasterId(1);
        s.htrans = HTrans::NonSeq;
        s.hwrite = true;
        s.haddr = 0x44;
        s.hsel = 0b10;
        all.extend(collect(&mut tap, &s));
        // Cycle 3: wait state on the data phase.
        let mut s = snap(3);
        s.hgrant = 0b10;
        s.hmaster = MasterId(1);
        s.hready = false;
        all.extend(collect(&mut tap, &s));
        // Cycle 4: data phase completes, bus idle.
        let mut s = snap(4);
        s.hgrant = 0b10;
        s.hmaster = MasterId(1);
        all.extend(collect(&mut tap, &s));

        let m1 = MasterId(1);
        assert_eq!(
            all,
            vec![
                TxnEvent::Granted {
                    master: MasterId(0),
                    wait_cycles: 0
                },
                TxnEvent::Requested { master: m1 },
                TxnEvent::Granted {
                    master: m1,
                    wait_cycles: 1
                },
                TxnEvent::Started {
                    master: m1,
                    slave: Some(SlaveId(1)),
                    addr: 0x44,
                    write: true,
                    burst: HBurst::Single
                },
                TxnEvent::Stalled { master: m1 },
                TxnEvent::BeatDone {
                    master: m1,
                    okay: true
                },
                TxnEvent::Completed { master: m1 },
            ]
        );
    }

    #[test]
    fn every_event_exposes_its_master_and_kind() {
        let m = MasterId(3);
        let cases = [
            (TxnEvent::Requested { master: m }, "Requested"),
            (
                TxnEvent::Granted {
                    master: m,
                    wait_cycles: 7,
                },
                "Granted",
            ),
            (
                TxnEvent::Started {
                    master: m,
                    slave: None,
                    addr: 0x10,
                    write: false,
                    burst: HBurst::Incr4,
                },
                "Started",
            ),
            (TxnEvent::Stalled { master: m }, "Stalled"),
            (
                TxnEvent::BeatDone {
                    master: m,
                    okay: false,
                },
                "BeatDone",
            ),
            (TxnEvent::Completed { master: m }, "Completed"),
        ];
        for (event, kind) in cases {
            assert_eq!(event.master(), m, "{kind} must carry its master");
            assert_eq!(event.kind_name(), kind);
        }
    }

    #[test]
    fn burst_beats_extend_one_transaction() {
        let mut tap = LifecycleTap::new(1);
        let mut all = Vec::new();
        // NONSEQ opening an INCR4 burst, then three SEQ beats, then idle.
        for (cycle, trans) in [
            (0, HTrans::NonSeq),
            (1, HTrans::Seq),
            (2, HTrans::Seq),
            (3, HTrans::Seq),
            (4, HTrans::Idle),
        ] {
            let mut s = snap(cycle);
            s.htrans = trans;
            s.hburst = HBurst::Incr4;
            s.haddr = 0x100 + 4 * cycle as u32;
            s.hsel = 0b1;
            all.extend(collect(&mut tap, &s));
        }
        let starts = all
            .iter()
            .filter(|e| matches!(e, TxnEvent::Started { .. }))
            .count();
        let beats = all
            .iter()
            .filter(|e| matches!(e, TxnEvent::BeatDone { .. }))
            .count();
        let completions = all
            .iter()
            .filter(|e| matches!(e, TxnEvent::Completed { .. }))
            .count();
        assert_eq!((starts, beats, completions), (1, 4, 1));
        // The completion follows the final beat, on the idle cycle.
        assert_eq!(
            all.last(),
            Some(&TxnEvent::Completed {
                master: MasterId(0)
            })
        );
    }

    #[test]
    fn unselected_address_decodes_to_default_slave() {
        assert_eq!(slave_of(0), None);
        assert_eq!(slave_of(0b100), Some(SlaveId(2)));
    }

    #[test]
    fn finish_flushes_open_burst() {
        let mut tap = LifecycleTap::new(1);
        let mut s = snap(0);
        s.htrans = HTrans::NonSeq;
        s.hsel = 0b1;
        let _ = collect(&mut tap, &s);
        let mut flushed = Vec::new();
        tap.finish(|e| flushed.push(e));
        assert_eq!(
            flushed,
            vec![TxnEvent::Completed {
                master: MasterId(0)
            }]
        );
        // Idempotent: a second finish emits nothing.
        let mut again = Vec::new();
        tap.finish(|e| again.push(e));
        assert!(again.is_empty());
    }
}
