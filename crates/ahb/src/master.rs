//! The master interface and a programmable (scripted) master model.

use std::collections::VecDeque;

use crate::burst::burst_addresses;
use crate::lane::{from_lanes, to_lanes};
use crate::types::{HBurst, HResp, HSize, HTrans, MasterIn, MasterOut};

/// An AHB master as seen by the bus fabric.
///
/// [`AhbMaster::cycle`] is called exactly once per bus clock cycle with the
/// values the master sampled at the rising edge; it returns the signals the
/// master drives during the cycle. The `Any` supertrait allows typed access
/// through [`crate::AhbBus::master_as`].
pub trait AhbMaster: std::any::Any {
    /// One clock cycle of master behaviour.
    fn cycle(&mut self, input: &MasterIn) -> MasterOut;

    /// True once the master has no further work (used to end simulations).
    fn done(&self) -> bool {
        false
    }

    /// Synchronous reset.
    fn reset(&mut self) {}

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "master"
    }
}

/// A master that never requests the bus and always drives IDLE — the
/// paper's "simple default master".
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleMaster;

impl IdleMaster {
    /// Creates an idle master.
    pub fn new() -> Self {
        IdleMaster
    }
}

impl AhbMaster for IdleMaster {
    fn cycle(&mut self, _input: &MasterIn) -> MasterOut {
        MasterOut::default()
    }

    fn done(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "idle"
    }
}

/// One scripted bus operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Drive IDLE without requesting the bus for `n` cycles (bus handover
    /// can occur here, as in the paper's testbench).
    Idle(u32),
    /// A single write transfer.
    Write {
        /// Target address.
        addr: u32,
        /// Right-aligned value to write.
        value: u32,
        /// Transfer size.
        size: HSize,
    },
    /// A single read transfer (the result is recorded in
    /// [`ScriptedMaster::reads`]).
    Read {
        /// Target address.
        addr: u32,
        /// Transfer size.
        size: HSize,
    },
    /// A burst transfer.
    Burst {
        /// Write (true) or read (false) burst.
        write: bool,
        /// Burst kind; for [`HBurst::Incr`] the length is `data.len()`.
        burst: HBurst,
        /// Address of the first beat.
        addr: u32,
        /// Per-beat write data (right-aligned); for reads only the length
        /// matters.
        data: Vec<u32>,
        /// Transfer size of every beat.
        size: HSize,
        /// BUSY cycles inserted between consecutive beats.
        busy_between: u32,
    },
    /// A locked (non-interruptible) sequence of operations; HLOCK is held
    /// until the last contained transfer issues its address phase.
    Locked(Vec<Op>),
}

impl Op {
    /// Shorthand for a word write.
    pub fn write(addr: u32, value: u32) -> Op {
        Op::Write {
            addr,
            value,
            size: HSize::Word,
        }
    }

    /// Shorthand for a word read.
    pub fn read(addr: u32) -> Op {
        Op::Read {
            addr,
            size: HSize::Word,
        }
    }

    /// Visits this op and, recursively, every op nested inside a
    /// [`Op::Locked`] sequence, outermost first.
    ///
    /// Static analyzers use this to walk a script without re-implementing
    /// the locked-sequence nesting.
    pub fn for_each<F: FnMut(&Op)>(&self, f: &mut F) {
        f(self);
        if let Op::Locked(inner) = self {
            for op in inner {
                op.for_each(f);
            }
        }
    }
}

/// Flattened script element.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Gap(u32),
    Busy {
        addr: u32,
        write: bool,
        size: HSize,
        burst: HBurst,
        lock: bool,
    },
    Beat(Beat),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Beat {
    addr: u32,
    write: bool,
    size: HSize,
    burst: HBurst,
    /// SEQ if this beat continues the previous slot's burst.
    seq: bool,
    wdata: u32,
    lock: bool,
}

fn flatten(ops: &[Op], lock: bool, out: &mut Vec<Slot>) {
    for op in ops {
        match op {
            Op::Idle(n) => out.push(Slot::Gap(*n)),
            Op::Write { addr, value, size } => out.push(Slot::Beat(Beat {
                addr: *addr,
                write: true,
                size: *size,
                burst: HBurst::Single,
                seq: false,
                wdata: *value,
                lock,
            })),
            Op::Read { addr, size } => out.push(Slot::Beat(Beat {
                addr: *addr,
                write: false,
                size: *size,
                burst: HBurst::Single,
                seq: false,
                wdata: 0,
                lock,
            })),
            Op::Burst {
                write,
                burst,
                addr,
                data,
                size,
                busy_between,
            } => {
                let n_beats = match burst.beats() {
                    Some(b) => b,
                    None if *burst == HBurst::Single => 1,
                    None => data.len().max(1),
                };
                assert!(
                    *burst == HBurst::Incr || data.len() == n_beats || !*write,
                    "write burst data length {} does not match {} beats",
                    data.len(),
                    n_beats
                );
                let addrs = burst_addresses(*addr, *size, *burst, n_beats);
                for (i, &a) in addrs.iter().enumerate() {
                    if i > 0 && *busy_between > 0 {
                        for _ in 0..*busy_between {
                            out.push(Slot::Busy {
                                addr: a,
                                write: *write,
                                size: *size,
                                burst: *burst,
                                lock,
                            });
                        }
                    }
                    out.push(Slot::Beat(Beat {
                        addr: a,
                        write: *write,
                        size: *size,
                        burst: *burst,
                        seq: i > 0,
                        wdata: data.get(i).copied().unwrap_or(0),
                        lock,
                    }));
                }
            }
            Op::Locked(inner) => {
                let mut nested = Vec::new();
                flatten(inner, true, &mut nested);
                // HLOCK drops with the address phase of the last transfer.
                if let Some(last_beat) = nested.iter().rposition(|s| matches!(s, Slot::Beat(_))) {
                    if let Slot::Beat(b) = &mut nested[last_beat] {
                        b.lock = false;
                    }
                }
                out.extend(nested);
            }
        }
    }
}

/// A master that executes a fixed script of [`Op`]s with protocol-correct
/// handling of wait states, ERROR, RETRY and SPLIT responses, bursts
/// (including BUSY insertion and early-termination restarts) and locked
/// sequences.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AhbMaster, Op, ScriptedMaster};
///
/// let m = ScriptedMaster::new(vec![
///     Op::write(0x100, 42),
///     Op::Idle(3),
///     Op::read(0x100),
/// ]);
/// assert!(!m.done());
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedMaster {
    script: Vec<Slot>,
    pos: usize,
    /// Remaining cycles of the current gap.
    gap_left: u32,
    /// Slot index whose address phase is being driven this cycle.
    ap: Option<usize>,
    /// Slot index currently in data phase.
    dp: Option<usize>,
    /// Slot index of the most recently issued beat (SEQ continuity check).
    last_issued: Option<usize>,
    /// Next issue must use NONSEQ (after a retry/split/grant loss).
    force_nonseq: bool,
    /// An interrupted burst is being continued as an INCR burst; wrap
    /// discontinuities must re-break with NONSEQ.
    restart_incr: bool,
    /// Outputs driven last cycle, held during wait states.
    last_out: MasterOut,
    completed: u64,
    errors: u64,
    retries: u64,
    splits: u64,
    reads: VecDeque<(u32, u32)>,
}

impl ScriptedMaster {
    /// Compiles a script into a master.
    pub fn new(ops: Vec<Op>) -> Self {
        let mut script = Vec::new();
        flatten(&ops, false, &mut script);
        let gap_left = match script.first() {
            Some(Slot::Gap(n)) => *n,
            _ => 0,
        };
        ScriptedMaster {
            script,
            pos: 0,
            gap_left,
            ap: None,
            dp: None,
            last_issued: None,
            force_nonseq: false,
            restart_incr: false,
            last_out: MasterOut::default(),
            completed: 0,
            errors: 0,
            retries: 0,
            splits: 0,
            reads: VecDeque::new(),
        }
    }

    /// Completed transfers (OKAY data phases).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// ERROR responses observed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// RETRY responses observed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// SPLIT responses observed.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Completed reads as `(addr, value)` pairs, oldest first.
    pub fn reads(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.reads.iter().copied()
    }

    /// Removes and returns the oldest completed read.
    pub fn pop_read(&mut self) -> Option<(u32, u32)> {
        self.reads.pop_front()
    }

    /// The beat stored at `slot`, or `None` if the slot index is out of
    /// range or holds a gap/BUSY slot. Pipeline bookkeeping only ever
    /// records beat slots, so `None` means the caller's phase tracking is
    /// stale and the transfer is simply not booked.
    fn beat(&self, slot: usize) -> Option<&Beat> {
        match self.script.get(slot) {
            Some(Slot::Beat(b)) => Some(b),
            _ => None,
        }
    }

    /// Rewinds the script so that `slot` is re-issued (RETRY/SPLIT).
    fn rewind_to(&mut self, slot: usize) {
        self.pos = slot;
        self.gap_left = 0;
        self.force_nonseq = true;
    }

    /// True if un-issued work remains at or after `pos`.
    fn work_remaining(&self) -> bool {
        self.script[self.pos..]
            .iter()
            .any(|s| !matches!(s, Slot::Gap(_)))
    }

    /// True if the script's next actionable slot is reached without an
    /// intervening gap (i.e. the master wants the bus right now).
    fn wants_bus(&self) -> bool {
        if self.gap_left > 0 {
            return false;
        }
        matches!(
            self.script.get(self.pos),
            Some(Slot::Beat(_)) | Some(Slot::Busy { .. })
        )
    }
}

impl AhbMaster for ScriptedMaster {
    fn cycle(&mut self, input: &MasterIn) -> MasterOut {
        // --- Data-phase bookkeeping -------------------------------------
        let mut cancelled = false;
        if input.ready {
            if let Some(dpi) = self.dp.take() {
                match input.resp {
                    HResp::Okay => {
                        if let Some(b) = self.beat(dpi).copied() {
                            self.completed += 1;
                            if !b.write {
                                self.reads
                                    .push_back((b.addr, from_lanes(input.rdata, b.addr, b.size)));
                            }
                        }
                    }
                    HResp::Error => {
                        self.errors += 1;
                        // Policy: continue with the rest of the script.
                    }
                    HResp::Retry | HResp::Split => {
                        // Normally rewound in the first response cycle; this
                        // branch covers zero-wait retried fabrics.
                        self.rewind_to(dpi);
                    }
                }
            }
            self.dp = self.ap.take();
        } else {
            match input.resp {
                HResp::Retry | HResp::Split => {
                    // The retried transfer is ours if it is in our data
                    // phase; independently, an address phase we were
                    // broadcasting is cancelled (it will not be latched) and
                    // must be re-issued later — even if the split belongs to
                    // a *different* master's data phase.
                    if self.dp.is_some() {
                        if input.resp == HResp::Retry {
                            self.retries += 1;
                        } else {
                            self.splits += 1;
                        }
                    }
                    if let Some(dpi) = self.dp.take() {
                        self.rewind_to(dpi);
                    } else if let Some(api) = self.ap {
                        self.rewind_to(api);
                    }
                    self.ap = None;
                    cancelled = true;
                }
                _ => {
                    // Plain wait state (or first ERROR cycle): hold outputs.
                }
            }
        }

        // --- Output generation ------------------------------------------
        if !input.ready && !cancelled {
            // Address phase must be held stable during wait states.
            return self.last_out;
        }
        let mut out = MasterOut::default();
        if cancelled {
            // Second cycle of RETRY/SPLIT: drive IDLE, keep requesting.
            out.busreq = self.work_remaining();
            out.trans = HTrans::Idle;
            self.drive_wdata(&mut out);
            self.last_out = out;
            return out;
        }
        // Consume a gap cycle if one is active.
        if self.gap_left > 0 {
            self.gap_left -= 1;
            if self.gap_left == 0 {
                self.pos += 1;
                if let Some(Slot::Gap(n)) = self.script.get(self.pos) {
                    self.gap_left = *n;
                }
            }
            out.trans = HTrans::Idle;
            // Re-request as the gap expires so the grant can be back in
            // time for the next transfer.
            out.busreq = self.wants_bus();
            self.drive_wdata(&mut out);
            self.last_out = out;
            return out;
        }
        if let Some(Slot::Gap(n)) = self.script.get(self.pos) {
            // A zero-length gap degenerates to skipping; otherwise start it.
            if *n > 0 {
                self.gap_left = *n;
                out.trans = HTrans::Idle;
                out.busreq = false;
                self.drive_wdata(&mut out);
                self.last_out = out;
                return out;
            }
            self.pos += 1;
        }
        if input.grant {
            match self.script.get(self.pos).cloned() {
                Some(Slot::Beat(b)) => {
                    // SEQ is legal only if the previous beat of the same
                    // burst was the last thing we issued (BUSY slots in
                    // between are fine).
                    let mut seq_ok = b.seq
                        && !self.force_nonseq
                        && self
                            .last_issued
                            .is_some_and(|li| li < self.pos && self.contiguous(li, self.pos));
                    if seq_ok && self.restart_incr {
                        // The burst was interrupted earlier and restarted as
                        // an INCR burst: SEQ may only continue incrementing
                        // addresses; a wrap discontinuity re-breaks.
                        seq_ok =
                            self.last_issued
                                .and_then(|li| self.beat(li))
                                .is_some_and(|prev| {
                                    b.addr == prev.addr.wrapping_add(prev.size.bytes())
                                });
                    }
                    out.trans = if seq_ok { HTrans::Seq } else { HTrans::NonSeq };
                    if out.trans == HTrans::NonSeq {
                        // A natural burst start clears the restart mode; a
                        // mid-burst restart (re)enters it.
                        self.restart_incr = b.seq;
                    }
                    out.addr = b.addr;
                    out.write = b.write;
                    out.size = b.size;
                    out.burst = if self.restart_incr {
                        HBurst::Incr
                    } else {
                        b.burst
                    };
                    out.lock = b.lock;
                    self.force_nonseq = false;
                    self.ap = Some(self.pos);
                    self.last_issued = Some(self.pos);
                    self.pos += 1;
                    if let Some(Slot::Gap(n)) = self.script.get(self.pos) {
                        self.gap_left = *n;
                    }
                }
                Some(Slot::Busy {
                    addr,
                    write,
                    size,
                    burst,
                    lock,
                }) => {
                    // BUSY is only legal mid-burst; if the burst was
                    // interrupted, skip the BUSY slots and restart.
                    if self.force_nonseq || self.last_issued.is_none() {
                        while matches!(self.script.get(self.pos), Some(Slot::Busy { .. })) {
                            self.pos += 1;
                        }
                        out.trans = HTrans::Idle;
                    } else {
                        out.trans = HTrans::Busy;
                        out.addr = addr;
                        out.write = write;
                        out.size = size;
                        out.burst = if self.restart_incr {
                            HBurst::Incr
                        } else {
                            burst
                        };
                        out.lock = lock;
                        self.pos += 1;
                    }
                }
                Some(Slot::Gap(_)) | None => {
                    out.trans = HTrans::Idle;
                }
            }
        } else {
            out.trans = HTrans::Idle;
            if self.wants_bus() {
                // Lost the bus mid-burst (next slot is a SEQ beat or a BUSY
                // pause): the remainder must restart with NONSEQ.
                match self.script.get(self.pos) {
                    Some(Slot::Beat(b)) if b.seq => self.force_nonseq = true,
                    Some(Slot::Busy { .. }) => self.force_nonseq = true,
                    _ => {}
                }
            }
        }
        // HBUSREQ reflects the state *after* this cycle's issue: it drops
        // during the last transfer's address phase (so the arbiter can hand
        // the bus over immediately, as the AMBA spec recommends).
        out.busreq = self.wants_bus();
        self.drive_wdata(&mut out);
        self.last_out = out;
        out
    }

    fn done(&self) -> bool {
        self.ap.is_none() && self.dp.is_none() && !self.work_remaining()
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.gap_left = match self.script.first() {
            Some(Slot::Gap(n)) => *n,
            _ => 0,
        };
        self.ap = None;
        self.dp = None;
        self.last_issued = None;
        self.force_nonseq = false;
        self.restart_incr = false;
        self.last_out = MasterOut::default();
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

impl ScriptedMaster {
    /// True if every slot in `(from, to)` is a BUSY slot (the two beats are
    /// part of one uninterrupted burst).
    fn contiguous(&self, from: usize, to: usize) -> bool {
        self.script[from + 1..to]
            .iter()
            .all(|s| matches!(s, Slot::Busy { .. }))
    }

    fn drive_wdata(&self, out: &mut MasterOut) {
        if let Some(b) = self.dp.and_then(|dpi| self.beat(dpi)) {
            if b.write {
                out.wdata = to_lanes(b.wdata, b.addr, b.size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MasterIn;

    fn granted_ready() -> MasterIn {
        MasterIn {
            grant: true,
            ready: true,
            resp: HResp::Okay,
            rdata: 0,
        }
    }

    #[test]
    fn single_write_issues_nonseq_then_drives_wdata() {
        let mut m = ScriptedMaster::new(vec![Op::write(0x100, 0xAB)]);
        let out = m.cycle(&granted_ready());
        assert_eq!(out.trans, HTrans::NonSeq);
        assert_eq!(out.addr, 0x100);
        assert!(out.write);
        // Next cycle: transfer is in data phase, wdata driven.
        let out = m.cycle(&granted_ready());
        assert_eq!(out.trans, HTrans::Idle);
        assert_eq!(out.wdata, 0xAB);
        // Completion.
        let _ = m.cycle(&granted_ready());
        assert_eq!(m.completed(), 1);
        assert!(m.done());
    }

    #[test]
    fn read_records_rdata() {
        let mut m = ScriptedMaster::new(vec![Op::read(0x40)]);
        let _ = m.cycle(&granted_ready()); // issue (address phase)
        let _ = m.cycle(&granted_ready()); // data phase runs on the bus
        let mut input = granted_ready();
        input.rdata = 0x1234_5678; // sampled at the edge ending the data phase
        let _ = m.cycle(&input);
        assert_eq!(m.pop_read(), Some((0x40, 0x1234_5678)));
        assert_eq!(m.completed(), 1);
    }

    #[test]
    fn waits_hold_address_phase() {
        let mut m = ScriptedMaster::new(vec![Op::write(0x100, 1), Op::write(0x104, 2)]);
        let first = m.cycle(&granted_ready());
        assert_eq!(first.addr, 0x100);
        // Wait state: outputs must be identical.
        let wait_in = MasterIn {
            grant: true,
            ready: false,
            resp: HResp::Okay,
            rdata: 0,
        };
        let held = m.cycle(&wait_in);
        assert_eq!(held, first);
        let held = m.cycle(&wait_in);
        assert_eq!(held, first);
        // Ready: second write issues.
        let out = m.cycle(&granted_ready());
        assert_eq!(out.addr, 0x104);
        assert_eq!(out.trans, HTrans::NonSeq);
    }

    #[test]
    fn not_granted_drives_idle_and_requests() {
        let mut m = ScriptedMaster::new(vec![Op::write(0, 0)]);
        let input = MasterIn {
            grant: false,
            ready: true,
            resp: HResp::Okay,
            rdata: 0,
        };
        let out = m.cycle(&input);
        assert_eq!(out.trans, HTrans::Idle);
        assert!(out.busreq);
        assert!(!m.done());
    }

    #[test]
    fn idle_gap_releases_bus_request() {
        let mut m = ScriptedMaster::new(vec![Op::Idle(2), Op::write(0, 0)]);
        let out = m.cycle(&granted_ready());
        assert!(!out.busreq, "gap cycle 1");
        let out = m.cycle(&granted_ready());
        assert_eq!(out.trans, HTrans::Idle, "gap cycle 2 still idle");
        assert!(out.busreq, "re-requests as the gap expires");
        let out = m.cycle(&granted_ready());
        assert_eq!(out.trans, HTrans::NonSeq, "gap over");
    }

    #[test]
    fn incr4_burst_addresses_and_seq() {
        let mut m = ScriptedMaster::new(vec![Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 0x200,
            data: vec![1, 2, 3, 4],
            size: HSize::Word,
            busy_between: 0,
        }]);
        let o0 = m.cycle(&granted_ready());
        assert_eq!(
            (o0.trans, o0.addr, o0.burst),
            (HTrans::NonSeq, 0x200, HBurst::Incr4)
        );
        let o1 = m.cycle(&granted_ready());
        assert_eq!((o1.trans, o1.addr), (HTrans::Seq, 0x204));
        assert_eq!(o1.wdata, 1, "beat 0 in data phase");
        let o2 = m.cycle(&granted_ready());
        assert_eq!((o2.trans, o2.addr), (HTrans::Seq, 0x208));
        let o3 = m.cycle(&granted_ready());
        assert_eq!((o3.trans, o3.addr), (HTrans::Seq, 0x20C));
        let _ = m.cycle(&granted_ready());
        let _ = m.cycle(&granted_ready());
        assert_eq!(m.completed(), 4);
        assert!(m.done());
    }

    #[test]
    fn busy_slots_emit_busy_with_next_address() {
        let mut m = ScriptedMaster::new(vec![Op::Burst {
            write: false,
            burst: HBurst::Incr4,
            addr: 0x0,
            data: vec![0; 4],
            size: HSize::Word,
            busy_between: 1,
        }]);
        let o0 = m.cycle(&granted_ready());
        assert_eq!(o0.trans, HTrans::NonSeq);
        let o1 = m.cycle(&granted_ready());
        assert_eq!((o1.trans, o1.addr), (HTrans::Busy, 0x4));
        let o2 = m.cycle(&granted_ready());
        assert_eq!((o2.trans, o2.addr), (HTrans::Seq, 0x4));
    }

    #[test]
    fn retry_rewinds_and_reissues_nonseq() {
        let mut m = ScriptedMaster::new(vec![Op::write(0x10, 7), Op::write(0x14, 8)]);
        let _ = m.cycle(&granted_ready()); // issue 0x10
        let _ = m.cycle(&granted_ready()); // 0x10 in dp, issue 0x14
                                           // First RETRY cycle: ready low.
        let retry1 = MasterIn {
            grant: true,
            ready: false,
            resp: HResp::Retry,
            rdata: 0,
        };
        let out = m.cycle(&retry1);
        assert_eq!(out.trans, HTrans::Idle, "second retry cycle drives IDLE");
        assert_eq!(m.retries(), 1);
        // Second RETRY cycle: ready high.
        let retry2 = MasterIn {
            grant: true,
            ready: true,
            resp: HResp::Retry,
            rdata: 0,
        };
        let out = m.cycle(&retry2);
        assert_eq!((out.trans, out.addr), (HTrans::NonSeq, 0x10), "reissued");
        // Run to completion.
        for _ in 0..6 {
            let _ = m.cycle(&granted_ready());
        }
        assert_eq!(m.completed(), 2);
        assert!(m.done());
    }

    #[test]
    fn error_response_skips_transfer_and_continues() {
        let mut m = ScriptedMaster::new(vec![Op::write(0x10, 1), Op::write(0x14, 2)]);
        let _ = m.cycle(&granted_ready()); // issue 0x10
        let _ = m.cycle(&granted_ready()); // 0x10 dp, issue 0x14
                                           // Two-cycle ERROR for 0x10.
        let e1 = MasterIn {
            grant: true,
            ready: false,
            resp: HResp::Error,
            rdata: 0,
        };
        let held = m.cycle(&e1);
        assert_eq!(held.addr, 0x14, "master continues the next transfer");
        let e2 = MasterIn {
            grant: true,
            ready: true,
            resp: HResp::Error,
            rdata: 0,
        };
        let _ = m.cycle(&e2);
        assert_eq!(m.errors(), 1);
        for _ in 0..4 {
            let _ = m.cycle(&granted_ready());
        }
        assert_eq!(m.completed(), 1, "only 0x14 completed");
        assert!(m.done());
    }

    #[test]
    fn grant_loss_mid_burst_restarts_nonseq() {
        let mut m = ScriptedMaster::new(vec![Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 0x0,
            data: vec![9, 9, 9, 9],
            size: HSize::Word,
            busy_between: 0,
        }]);
        let _ = m.cycle(&granted_ready()); // beat 0 NONSEQ
        let o1 = m.cycle(&granted_ready()); // beat 1 SEQ
        assert_eq!(o1.trans, HTrans::Seq);
        // Grant removed.
        let lost = MasterIn {
            grant: false,
            ready: true,
            resp: HResp::Okay,
            rdata: 0,
        };
        let out = m.cycle(&lost);
        assert_eq!(out.trans, HTrans::Idle);
        assert!(out.busreq, "still wants the bus");
        // Regranted: beat 2 restarts as NONSEQ/INCR.
        let out = m.cycle(&granted_ready());
        assert_eq!(out.trans, HTrans::NonSeq);
        assert_eq!(out.addr, 0x8);
        assert_eq!(out.burst, HBurst::Incr);
    }

    #[test]
    fn locked_sequence_asserts_lock_until_last_beat() {
        let mut m = ScriptedMaster::new(vec![Op::Locked(vec![Op::write(0x0, 1), Op::read(0x0)])]);
        let o0 = m.cycle(&granted_ready());
        assert!(o0.lock, "first locked beat holds HLOCK");
        let o1 = m.cycle(&granted_ready());
        assert!(!o1.lock, "HLOCK drops with the last locked address phase");
        assert_eq!(o1.trans, HTrans::NonSeq);
    }

    #[test]
    fn idle_master_is_done_and_quiet() {
        let mut m = IdleMaster::new();
        let out = m.cycle(&MasterIn::default());
        assert_eq!(out, MasterOut::default());
        assert!(m.done());
        assert_eq!(m.name(), "idle");
    }

    #[test]
    fn reset_restarts_script() {
        let mut m = ScriptedMaster::new(vec![Op::write(0x10, 1)]);
        let _ = m.cycle(&granted_ready());
        m.reset();
        let out = m.cycle(&granted_ready());
        assert_eq!((out.trans, out.addr), (HTrans::NonSeq, 0x10));
    }
}
