//! Burst address arithmetic (AMBA AHB section 3.5).

use crate::types::{HBurst, HSize};

/// Computes the address of the beat following `addr` within a burst.
///
/// Incrementing bursts add the transfer size; wrapping bursts wrap at an
/// address boundary equal to `beats × size`.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{next_beat_addr, HBurst, HSize};
///
/// // WRAP4 of words starting at 0x38 wraps at the 16-byte boundary:
/// assert_eq!(next_beat_addr(0x38, HSize::Word, HBurst::Wrap4), 0x3C);
/// assert_eq!(next_beat_addr(0x3C, HSize::Word, HBurst::Wrap4), 0x30);
/// // INCR just increments:
/// assert_eq!(next_beat_addr(0x3C, HSize::Word, HBurst::Incr), 0x40);
/// ```
pub fn next_beat_addr(addr: u32, size: HSize, burst: HBurst) -> u32 {
    let step = size.bytes();
    match burst.beats() {
        Some(beats) if burst.is_wrapping() => {
            let window = step * beats as u32;
            let base = addr & !(window - 1);
            base | (addr.wrapping_add(step) & (window - 1))
        }
        _ => addr.wrapping_add(step),
    }
}

/// The full beat-address sequence of a fixed-length burst starting at
/// `start`. For SINGLE returns one address; for INCR (unspecified length)
/// returns `incr_len` addresses.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{burst_addresses, HBurst, HSize};
///
/// let seq = burst_addresses(0x34, HSize::Word, HBurst::Wrap4, 0);
/// assert_eq!(seq, vec![0x34, 0x38, 0x3C, 0x30]);
/// ```
pub fn burst_addresses(start: u32, size: HSize, burst: HBurst, incr_len: usize) -> Vec<u32> {
    let n = match burst {
        HBurst::Single => 1,
        HBurst::Incr => incr_len.max(1),
        _ => burst.beats().expect("fixed burst"),
    };
    let mut out = Vec::with_capacity(n);
    let mut a = start;
    for _ in 0..n {
        out.push(a);
        a = next_beat_addr(a, size, burst);
    }
    out
}

/// True if a fixed-length incrementing burst starting at `start` would cross
/// a 1 KB address boundary — which the AHB specification forbids.
/// Wrapping bursts never cross (their window is at most 64 bytes); INCR
/// bursts are the master's responsibility beat by beat.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{crosses_1kb_boundary, HBurst, HSize};
///
/// assert!(!crosses_1kb_boundary(0x3C0, HSize::Word, HBurst::Incr16));
/// assert!(crosses_1kb_boundary(0x3F4, HSize::Word, HBurst::Incr16));
/// ```
pub fn crosses_1kb_boundary(start: u32, size: HSize, burst: HBurst) -> bool {
    match burst.beats() {
        Some(beats) if !burst.is_wrapping() => {
            let last = start + size.bytes() * (beats as u32 - 1);
            (start >> 10) != (last >> 10)
        }
        _ => false,
    }
}

/// True if an unspecified-length incrementing (INCR) burst of `beats` beats
/// starting at `start` would cross a 1 KB address boundary.
///
/// The AHB specification makes this the master's responsibility: INCR has
/// no architected length, so the dynamic checker can only see it beat by
/// beat — but a *scripted* INCR burst has a known length, and a static
/// analyzer can reject it up front.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{incr_crosses_1kb_boundary, HSize};
///
/// assert!(!incr_crosses_1kb_boundary(0x3F8, HSize::Word, 2));
/// assert!(incr_crosses_1kb_boundary(0x3F8, HSize::Word, 3));
/// assert!(!incr_crosses_1kb_boundary(0x3F8, HSize::Word, 0));
/// ```
pub fn incr_crosses_1kb_boundary(start: u32, size: HSize, beats: usize) -> bool {
    if beats == 0 {
        return false;
    }
    let last = start.wrapping_add(size.bytes() * (beats as u32 - 1));
    (start >> 10) != (last >> 10)
}

/// True if `addr` is aligned to the transfer size, as required by the spec.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{is_aligned, HSize};
///
/// assert!(is_aligned(0x1004, HSize::Word));
/// assert!(!is_aligned(0x1002, HSize::Word));
/// assert!(is_aligned(0x1002, HSize::Half));
/// ```
pub fn is_aligned(addr: u32, size: HSize) -> bool {
    addr.is_multiple_of(size.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_sequences() {
        assert_eq!(
            burst_addresses(0x100, HSize::Word, HBurst::Incr4, 0),
            vec![0x100, 0x104, 0x108, 0x10C]
        );
        assert_eq!(
            burst_addresses(0x10, HSize::Byte, HBurst::Incr8, 0),
            (0x10..0x18).collect::<Vec<u32>>()
        );
        assert_eq!(
            burst_addresses(0x20, HSize::Half, HBurst::Single, 0),
            vec![0x20]
        );
        assert_eq!(
            burst_addresses(0x20, HSize::Word, HBurst::Incr, 3),
            vec![0x20, 0x24, 0x28]
        );
    }

    #[test]
    fn wrap_sequences_from_spec_examples() {
        // AMBA spec table: WRAP8 word burst starting at 0x34.
        assert_eq!(
            burst_addresses(0x34, HSize::Word, HBurst::Wrap8, 0),
            vec![0x34, 0x38, 0x3C, 0x20, 0x24, 0x28, 0x2C, 0x30]
        );
        // WRAP4 word starting at 0x38.
        assert_eq!(
            burst_addresses(0x38, HSize::Word, HBurst::Wrap4, 0),
            vec![0x38, 0x3C, 0x30, 0x34]
        );
        // WRAP16 halfword starting at 0x12: window is 32 bytes.
        let seq = burst_addresses(0x12, HSize::Half, HBurst::Wrap16, 0);
        assert_eq!(seq.len(), 16);
        assert_eq!(seq[0], 0x12);
        assert_eq!(seq[6], 0x1E);
        assert_eq!(seq[7], 0x00);
        assert!(seq.iter().all(|&a| a < 0x20));
    }

    #[test]
    fn wrap_visits_each_address_once() {
        for burst in [HBurst::Wrap4, HBurst::Wrap8, HBurst::Wrap16] {
            let seq = burst_addresses(0x5C, HSize::Word, burst, 0);
            let set: std::collections::HashSet<_> = seq.iter().collect();
            assert_eq!(set.len(), seq.len(), "{burst} repeats an address");
        }
    }

    #[test]
    fn boundary_checks() {
        assert!(crosses_1kb_boundary(0x3FC, HSize::Word, HBurst::Incr4));
        assert!(!crosses_1kb_boundary(0x3F0, HSize::Word, HBurst::Incr4));
        // Wrapping bursts never cross.
        assert!(!crosses_1kb_boundary(0x3FC, HSize::Word, HBurst::Wrap16));
        // Singles never cross.
        assert!(!crosses_1kb_boundary(0x3FF, HSize::Byte, HBurst::Single));
    }

    #[test]
    fn alignment() {
        assert!(is_aligned(0, HSize::Word));
        assert!(is_aligned(0x7, HSize::Byte));
        assert!(!is_aligned(0x6, HSize::Word));
        assert!(is_aligned(0x6, HSize::Half));
    }
}
