//! The Advanced Peripheral Bus and the AHB-to-APB bridge.
//!
//! The canonical AMBA architecture (paper, Section 5) pairs the
//! high-performance AHB with a low-bandwidth APB behind a bridge: "Also
//! located on the high-performance bus is a bridge to the lower bandwidth
//! APB, where most of the system peripheral devices are located."
//!
//! This module implements AMBA 2.0 APB: an unpipelined two-cycle protocol
//! (SETUP with PSEL, then ENABLE with PENABLE) driven here by an
//! [`ApbBridge`] that is itself an AHB slave — every AHB transfer into the
//! bridge's window becomes one APB access with one AHB wait state.

use std::fmt;

use crate::decoder::AddressMap;
use crate::slave::AhbSlave;
use crate::types::{AddressPhase, SlaveReply};

/// A peripheral on the APB. APB has no wait states or error responses in
/// AMBA 2.0, so the interface is a plain register-style read/write plus a
/// per-cycle tick for autonomous behaviour.
pub trait ApbPeripheral: std::any::Any {
    /// PWRITE = 0: returns PRDATA for the addressed register.
    fn read(&mut self, addr: u32) -> u32;

    /// PWRITE = 1: accepts PWDATA for the addressed register.
    fn write(&mut self, addr: u32, value: u32);

    /// One PCLK cycle (runs even when not selected).
    fn tick(&mut self) {}

    /// Synchronous reset.
    fn reset(&mut self) {}

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "apb-peripheral"
    }
}

/// The APB wires during one cycle — observable for power analysis just like
/// the AHB's [`crate::BusSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApbSnapshot {
    /// PSELx (one-hot or all-zero).
    pub psel: Vec<bool>,
    /// PENABLE — second cycle of an access.
    pub penable: bool,
    /// PADDR.
    pub paddr: u32,
    /// PWRITE.
    pub pwrite: bool,
    /// PWDATA.
    pub pwdata: u32,
    /// PRDATA (valid in the enable cycle of reads).
    pub prdata: u32,
}

/// Bridge FSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BridgeState {
    Idle,
    /// SETUP cycle pending for the latched transfer.
    Setup,
    /// ENABLE cycle pending.
    Enable,
}

/// Aggregate APB statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApbStats {
    /// APB read accesses completed.
    pub reads: u64,
    /// APB write accesses completed.
    pub writes: u64,
    /// Accesses to addresses outside every peripheral window (read as 0,
    /// writes dropped — APB has no error response).
    pub unmapped: u64,
}

/// The AHB-to-APB bridge: an [`AhbSlave`] that owns an APB segment.
///
/// Each AHB transfer into the bridge takes one wait state (the APB SETUP
/// cycle) and completes during the APB ENABLE cycle, matching the two-cycle
/// APB protocol. The bridge decodes `PADDR` with its own [`AddressMap`]
/// whose [`crate::SlaveId`]s index the attached peripherals.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddrRange, AddressMap, ApbBridge, RegisterFile, SlaveId};
///
/// let bridge = ApbBridge::new(
///     AddressMap::new(vec![AddrRange::new(0x0, 0x100, SlaveId(0))])?,
///     vec![Box::new(RegisterFile::new(16))],
/// );
/// assert_eq!(bridge.n_peripherals(), 1);
/// # Ok::<(), ahbpower_ahb::BuildMapError>(())
/// ```
pub struct ApbBridge {
    map: AddressMap,
    peripherals: Vec<Box<dyn ApbPeripheral>>,
    state: BridgeState,
    pending: Option<AddressPhase>,
    snapshot: ApbSnapshot,
    stats: ApbStats,
    /// Local-window mask applied to AHB addresses before APB decode.
    addr_mask: u32,
}

impl ApbBridge {
    /// Creates a bridge over `peripherals` with the given APB address map.
    /// AHB addresses are reduced modulo `0x1_0000` (a 64 KB APB window) by
    /// default; see [`ApbBridge::with_window`].
    pub fn new(map: AddressMap, peripherals: Vec<Box<dyn ApbPeripheral>>) -> Self {
        let n = peripherals.len();
        ApbBridge {
            map,
            peripherals,
            state: BridgeState::Idle,
            pending: None,
            snapshot: ApbSnapshot {
                psel: vec![false; n],
                ..ApbSnapshot::default()
            },
            stats: ApbStats::default(),
            addr_mask: 0xFFFF,
        }
    }

    /// Sets the APB window size (power of two) used to localize AHB
    /// addresses.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or not a power of two.
    pub fn with_window(mut self, window: u32) -> Self {
        assert!(
            window > 0 && window.is_power_of_two(),
            "window must be a power of two"
        );
        self.addr_mask = window - 1;
        self
    }

    /// Number of attached peripherals.
    pub fn n_peripherals(&self) -> usize {
        self.peripherals.len()
    }

    /// Typed access to a peripheral.
    pub fn peripheral_as<T: std::any::Any>(&self, i: usize) -> Option<&T> {
        let p: &dyn std::any::Any = &*self.peripherals[i];
        p.downcast_ref::<T>()
    }

    /// Typed mutable access to a peripheral.
    pub fn peripheral_as_mut<T: std::any::Any>(&mut self, i: usize) -> Option<&mut T> {
        let p: &mut dyn std::any::Any = &mut *self.peripherals[i];
        p.downcast_mut::<T>()
    }

    /// The APB wires of the most recent cycle.
    pub fn snapshot(&self) -> &ApbSnapshot {
        &self.snapshot
    }

    /// APB access statistics.
    pub fn stats(&self) -> ApbStats {
        self.stats
    }

    fn drive_idle(&mut self) {
        self.snapshot.psel.iter_mut().for_each(|s| *s = false);
        self.snapshot.penable = false;
        // PADDR/PWRITE/PWDATA hold their last values on a real APB.
    }
}

impl fmt::Debug for ApbBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApbBridge")
            .field("peripherals", &self.peripherals.len())
            .field("state", &self.state)
            .field("stats", &self.stats)
            .finish()
    }
}

impl AhbSlave for ApbBridge {
    fn address_phase(&mut self, phase: &AddressPhase) {
        self.pending = Some(*phase);
        self.state = BridgeState::Setup;
    }

    fn data_phase(&mut self, wdata: u32) -> SlaveReply {
        match self.state {
            BridgeState::Idle => {
                // Data phase without a latched transfer: zero-wait OKAY.
                self.drive_idle();
                SlaveReply::Done { rdata: 0 }
            }
            BridgeState::Setup => {
                let phase = self.pending.expect("setup implies a pending phase");
                let paddr = phase.addr & self.addr_mask;
                let sel = self.map.decode(paddr);
                self.snapshot.paddr = paddr;
                self.snapshot.pwrite = phase.write;
                self.snapshot.penable = false;
                for (i, s) in self.snapshot.psel.iter_mut().enumerate() {
                    *s = sel.is_some_and(|id| id.index() == i);
                }
                self.state = BridgeState::Enable;
                SlaveReply::Wait // the AHB waits out the SETUP cycle
            }
            BridgeState::Enable => {
                let phase = self.pending.take().expect("enable implies a pending phase");
                let paddr = phase.addr & self.addr_mask;
                self.snapshot.penable = true;
                self.snapshot.pwdata = if phase.write { wdata } else { 0 };
                let rdata = match self.map.decode(paddr) {
                    Some(id) => {
                        let p = &mut self.peripherals[id.index()];
                        if phase.write {
                            p.write(paddr, wdata);
                            self.stats.writes += 1;
                            0
                        } else {
                            let v = p.read(paddr);
                            self.stats.reads += 1;
                            v
                        }
                    }
                    None => {
                        self.stats.unmapped += 1;
                        0
                    }
                };
                self.snapshot.prdata = rdata;
                self.state = BridgeState::Idle;
                SlaveReply::Done { rdata }
            }
        }
    }

    fn tick(&mut self) {
        for p in &mut self.peripherals {
            p.tick();
        }
        if self.state == BridgeState::Idle {
            self.drive_idle();
        }
    }

    fn reset(&mut self) {
        self.state = BridgeState::Idle;
        self.pending = None;
        self.drive_idle();
        for p in &mut self.peripherals {
            p.reset();
        }
    }

    fn name(&self) -> &str {
        "ahb-apb-bridge"
    }
}

/// A bank of 32-bit registers (word addressed).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: Vec<u32>,
}

impl RegisterFile {
    /// Creates `n` zeroed registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one register");
        RegisterFile { regs: vec![0; n] }
    }

    /// Direct register access for tests.
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i % self.regs.len()]
    }
}

impl ApbPeripheral for RegisterFile {
    fn read(&mut self, addr: u32) -> u32 {
        let i = (addr as usize / 4) % self.regs.len();
        self.regs[i]
    }

    fn write(&mut self, addr: u32, value: u32) {
        let i = (addr as usize / 4) % self.regs.len();
        self.regs[i] = value;
    }

    fn reset(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = 0);
    }

    fn name(&self) -> &str {
        "regfile"
    }
}

/// A free-running timer: register 0 is the current count (writes set it),
/// register 1 is a compare value, register 2 reads 1 once count ≥ compare.
#[derive(Debug, Clone, Default)]
pub struct ApbTimer {
    count: u32,
    compare: u32,
}

impl ApbTimer {
    /// Creates a timer at zero.
    pub fn new() -> Self {
        ApbTimer::default()
    }

    /// Current count.
    pub fn count(&self) -> u32 {
        self.count
    }
}

impl ApbPeripheral for ApbTimer {
    fn read(&mut self, addr: u32) -> u32 {
        match (addr / 4) % 4 {
            0 => self.count,
            1 => self.compare,
            2 => u32::from(self.count >= self.compare),
            _ => 0,
        }
    }

    fn write(&mut self, addr: u32, value: u32) {
        match (addr / 4) % 4 {
            0 => self.count = value,
            1 => self.compare = value,
            _ => {}
        }
    }

    fn tick(&mut self) {
        self.count = self.count.wrapping_add(1);
    }

    fn reset(&mut self) {
        self.count = 0;
        self.compare = 0;
    }

    fn name(&self) -> &str {
        "timer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::AddrRange;
    use crate::types::{HBurst, HSize, HTrans, MasterId, SlaveId};

    fn bridge() -> ApbBridge {
        ApbBridge::new(
            AddressMap::new(vec![
                AddrRange::new(0x000, 0x100, SlaveId(0)),
                AddrRange::new(0x100, 0x100, SlaveId(1)),
            ])
            .unwrap(),
            vec![Box::new(RegisterFile::new(8)), Box::new(ApbTimer::new())],
        )
    }

    fn phase(addr: u32, write: bool) -> AddressPhase {
        AddressPhase {
            master: MasterId(0),
            addr,
            write,
            size: HSize::Word,
            burst: HBurst::Single,
            trans: HTrans::NonSeq,
            mastlock: false,
        }
    }

    #[test]
    fn two_cycle_apb_access() {
        let mut b = bridge();
        b.address_phase(&phase(0x8, true));
        // SETUP cycle: wait state on the AHB, PSEL up, PENABLE down.
        assert_eq!(b.data_phase(0xAB), SlaveReply::Wait);
        assert_eq!(b.snapshot().psel, vec![true, false]);
        assert!(!b.snapshot().penable);
        assert_eq!(b.snapshot().paddr, 0x8);
        // ENABLE cycle: access happens.
        assert_eq!(b.data_phase(0xAB), SlaveReply::Done { rdata: 0 });
        assert!(b.snapshot().penable);
        assert_eq!(b.stats().writes, 1);
        assert_eq!(b.peripheral_as::<RegisterFile>(0).unwrap().reg(2), 0xAB);
    }

    #[test]
    fn read_returns_peripheral_data() {
        let mut b = bridge();
        b.peripheral_as_mut::<RegisterFile>(0)
            .unwrap()
            .write(0x4, 0x77);
        b.address_phase(&phase(0x4, false));
        assert_eq!(b.data_phase(0), SlaveReply::Wait);
        assert_eq!(b.data_phase(0), SlaveReply::Done { rdata: 0x77 });
        assert_eq!(b.snapshot().prdata, 0x77);
        assert_eq!(b.stats().reads, 1);
    }

    #[test]
    fn timer_counts_on_tick_and_compares() {
        let mut b = bridge();
        for _ in 0..10 {
            b.tick();
        }
        b.address_phase(&phase(0x100, false)); // timer count register
        let _ = b.data_phase(0);
        let reply = b.data_phase(0);
        assert_eq!(reply, SlaveReply::Done { rdata: 10 });
        // Set compare = 12, then tick past it and read the match flag.
        b.address_phase(&phase(0x104, true));
        let _ = b.data_phase(12);
        let _ = b.data_phase(12);
        for _ in 0..5 {
            b.tick();
        }
        b.address_phase(&phase(0x108, false));
        let _ = b.data_phase(0);
        assert_eq!(b.data_phase(0), SlaveReply::Done { rdata: 1 });
    }

    #[test]
    fn unmapped_apb_addresses_read_zero() {
        let mut b = bridge();
        b.address_phase(&phase(0xF00, false));
        let _ = b.data_phase(0);
        assert_eq!(b.data_phase(0), SlaveReply::Done { rdata: 0 });
        assert_eq!(b.stats().unmapped, 1);
        assert_eq!(b.snapshot().psel, vec![false, false], "no PSEL");
    }

    #[test]
    fn psel_drops_between_accesses() {
        let mut b = bridge();
        b.address_phase(&phase(0x0, false));
        let _ = b.data_phase(0);
        let _ = b.data_phase(0);
        b.tick(); // idle cycle
        assert_eq!(b.snapshot().psel, vec![false, false]);
        assert!(!b.snapshot().penable);
    }

    #[test]
    fn ahb_window_localizes_addresses() {
        let mut b = bridge().with_window(0x1000);
        // An AHB address high in the bridge's window maps into APB space.
        b.address_phase(&phase(0x8000_0004, false));
        let _ = b.data_phase(0);
        let _ = b.data_phase(0);
        assert_eq!(b.snapshot().paddr, 0x4);
    }

    #[test]
    fn reset_clears_bridge_and_peripherals() {
        let mut b = bridge();
        for _ in 0..5 {
            b.tick();
        }
        b.address_phase(&phase(0x0, true));
        let _ = b.data_phase(1);
        b.reset();
        assert_eq!(b.peripheral_as::<ApbTimer>(1).unwrap().count(), 0);
        assert!(matches!(b.data_phase(0), SlaveReply::Done { .. }));
    }
}
