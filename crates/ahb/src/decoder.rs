//! The central address decoder: HADDR → one-hot HSELx.

use std::error::Error;
use std::fmt;

use crate::types::SlaveId;

/// One slave's address window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// First address of the window.
    pub start: u32,
    /// Size of the window in bytes (must be positive).
    pub size: u32,
    /// The slave selected for this window.
    pub slave: SlaveId,
}

impl AddrRange {
    /// Creates a range after validating it does not wrap the address space.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `start + size` overflows.
    pub fn new(start: u32, size: u32, slave: SlaveId) -> Self {
        assert!(size > 0, "address range must be non-empty");
        assert!(
            start.checked_add(size - 1).is_some(),
            "address range wraps past the end of the address space"
        );
        AddrRange { start, size, slave }
    }

    /// End of the window (inclusive).
    pub fn end(&self) -> u32 {
        self.start + (self.size - 1)
    }

    /// True if `addr` falls inside the window.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr <= self.end()
    }

    /// True if the two windows share at least one address.
    ///
    /// # Examples
    ///
    /// ```
    /// use ahbpower_ahb::{AddrRange, SlaveId};
    ///
    /// let a = AddrRange::new(0x0000, 0x1000, SlaveId(0));
    /// let b = AddrRange::new(0x0800, 0x1000, SlaveId(1));
    /// let c = AddrRange::new(0x1000, 0x1000, SlaveId(2));
    /// assert!(a.overlaps(&b));
    /// assert!(!a.overlaps(&c));
    /// ```
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start <= other.end() && other.start <= self.end()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#010x}..={:#010x}] -> {}",
            self.start,
            self.end(),
            self.slave
        )
    }
}

/// Errors raised when building an [`AddressMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildMapError {
    /// Two windows overlap.
    Overlap(AddrRange, AddrRange),
}

impl fmt::Display for BuildMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMapError::Overlap(a, b) => write!(f, "address ranges overlap: {a} and {b}"),
        }
    }
}

impl Error for BuildMapError {}

/// The bus's address map — the behaviour of the central decoder.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{AddrRange, AddressMap, SlaveId};
///
/// let map = AddressMap::new(vec![
///     AddrRange::new(0x0000_0000, 0x1000, SlaveId(0)),
///     AddrRange::new(0x2000_0000, 0x1000, SlaveId(1)),
/// ])?;
/// assert_eq!(map.decode(0x0000_0004), Some(SlaveId(0)));
/// assert_eq!(map.decode(0x2000_0FFC), Some(SlaveId(1)));
/// assert_eq!(map.decode(0x9000_0000), None); // default slave territory
/// # Ok::<(), ahbpower_ahb::BuildMapError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    ranges: Vec<AddrRange>,
}

impl AddressMap {
    /// Builds a map, rejecting overlapping windows.
    ///
    /// # Errors
    ///
    /// [`BuildMapError::Overlap`] if any two windows intersect.
    pub fn new(mut ranges: Vec<AddrRange>) -> Result<Self, BuildMapError> {
        ranges.sort_by_key(|r| r.start);
        for pair in ranges.windows(2) {
            if pair[1].start <= pair[0].end() {
                return Err(BuildMapError::Overlap(pair[0], pair[1]));
            }
        }
        Ok(AddressMap { ranges })
    }

    /// Builds the map the paper's testbench uses: `n_slaves` windows of
    /// `window` bytes each, slave *i* at `i * window`.
    ///
    /// # Panics
    ///
    /// Panics if `n_slaves == 0` or the windows would overflow.
    pub fn evenly_spaced(n_slaves: usize, window: u32) -> Self {
        assert!(n_slaves > 0, "need at least one slave");
        let ranges = (0..n_slaves)
            .map(|i| AddrRange::new(i as u32 * window, window, SlaveId(i as u8)))
            .collect();
        AddressMap::new(ranges).expect("evenly spaced windows cannot overlap")
    }

    /// Decodes an address to the selected slave, or `None` for unmapped
    /// addresses (which the bus routes to its built-in default slave).
    pub fn decode(&self, addr: u32) -> Option<SlaveId> {
        let idx = self.ranges.partition_point(|r| r.start <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.ranges[idx - 1];
        r.contains(addr).then_some(r.slave)
    }

    /// The windows, sorted by start address.
    pub fn ranges(&self) -> &[AddrRange] {
        &self.ranges
    }

    /// Unmapped spans *between* the first and the last mapped address, as
    /// inclusive `(start, end)` pairs. Addresses below the first window or
    /// above the last are default-slave territory by design and are not
    /// reported.
    ///
    /// Static analyzers use this to flag decoder maps with interior holes,
    /// where a scripted address silently falls through to the default
    /// slave.
    ///
    /// # Examples
    ///
    /// ```
    /// use ahbpower_ahb::{AddrRange, AddressMap, SlaveId};
    ///
    /// let map = AddressMap::new(vec![
    ///     AddrRange::new(0x0000, 0x1000, SlaveId(0)),
    ///     AddrRange::new(0x2000, 0x1000, SlaveId(1)),
    /// ])?;
    /// assert_eq!(map.coverage_gaps(), vec![(0x1000, 0x1FFF)]);
    /// # Ok::<(), ahbpower_ahb::BuildMapError>(())
    /// ```
    pub fn coverage_gaps(&self) -> Vec<(u32, u32)> {
        let mut gaps = Vec::new();
        for pair in self.ranges.windows(2) {
            let hole_start = pair[0].end().saturating_add(1);
            if hole_start < pair[1].start && hole_start > pair[0].end() {
                gaps.push((hole_start, pair[1].start - 1));
            }
        }
        gaps
    }

    /// The largest slave index that appears in the map, plus one.
    pub fn slave_count(&self) -> usize {
        self.ranges
            .iter()
            .map(|r| r.slave.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_boundaries() {
        let map = AddressMap::new(vec![
            AddrRange::new(0x1000, 0x1000, SlaveId(0)),
            AddrRange::new(0x2000, 0x1000, SlaveId(1)),
        ])
        .unwrap();
        assert_eq!(map.decode(0x0FFF), None);
        assert_eq!(map.decode(0x1000), Some(SlaveId(0)));
        assert_eq!(map.decode(0x1FFF), Some(SlaveId(0)));
        assert_eq!(map.decode(0x2000), Some(SlaveId(1)));
        assert_eq!(map.decode(0x2FFF), Some(SlaveId(1)));
        assert_eq!(map.decode(0x3000), None);
    }

    #[test]
    fn overlap_rejected() {
        let err = AddressMap::new(vec![
            AddrRange::new(0x1000, 0x1000, SlaveId(0)),
            AddrRange::new(0x1800, 0x1000, SlaveId(1)),
        ])
        .unwrap_err();
        assert!(matches!(err, BuildMapError::Overlap(..)));
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn adjacent_windows_are_fine() {
        assert!(AddressMap::new(vec![
            AddrRange::new(0x0, 0x100, SlaveId(0)),
            AddrRange::new(0x100, 0x100, SlaveId(1)),
        ])
        .is_ok());
    }

    #[test]
    fn evenly_spaced_map() {
        let map = AddressMap::evenly_spaced(3, 0x1_0000);
        assert_eq!(map.slave_count(), 3);
        assert_eq!(map.decode(0x0_5000), Some(SlaveId(0)));
        assert_eq!(map.decode(0x1_5000), Some(SlaveId(1)));
        assert_eq!(map.decode(0x2_5000), Some(SlaveId(2)));
        assert_eq!(map.decode(0x3_0000), None);
    }

    #[test]
    fn range_display_and_contains() {
        let r = AddrRange::new(0x100, 0x10, SlaveId(2));
        assert!(r.contains(0x100));
        assert!(r.contains(0x10F));
        assert!(!r.contains(0x110));
        assert!(r.to_string().contains("S2"));
    }

    #[test]
    fn range_covering_top_of_address_space() {
        let r = AddrRange::new(0xFFFF_F000, 0x1000, SlaveId(0));
        assert_eq!(r.end(), 0xFFFF_FFFF);
        assert!(r.contains(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "wraps past the end")]
    fn wrapping_range_panics() {
        let _ = AddrRange::new(0xFFFF_F000, 0x2000, SlaveId(0));
    }
}
