//! Byte-lane placement on the 32-bit data bus.
//!
//! AHB is little-endian here: a transfer of `size` bytes at address `a`
//! occupies byte lanes `a % 4 .. a % 4 + size` of HWDATA/HRDATA.

use crate::types::HSize;

/// The HWDATA/HRDATA bit mask occupied by a transfer.
///
/// # Panics
///
/// Panics if `addr` is not aligned to `size`.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{lane_mask, HSize};
///
/// assert_eq!(lane_mask(0x1000, HSize::Word), 0xFFFF_FFFF);
/// assert_eq!(lane_mask(0x1002, HSize::Half), 0xFFFF_0000);
/// assert_eq!(lane_mask(0x1001, HSize::Byte), 0x0000_FF00);
/// ```
pub fn lane_mask(addr: u32, size: HSize) -> u32 {
    assert!(
        crate::burst::is_aligned(addr, size),
        "unaligned transfer: {addr:#x} size {size}"
    );
    let offset = (addr % 4) * 8;
    let width_mask: u32 = match size {
        HSize::Byte => 0xFF,
        HSize::Half => 0xFFFF,
        HSize::Word => 0xFFFF_FFFF,
    };
    width_mask << offset
}

/// Places a right-aligned `value` onto its byte lanes.
///
/// # Panics
///
/// Panics if `addr` is not aligned to `size`.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{to_lanes, HSize};
///
/// assert_eq!(to_lanes(0xAB, 0x1001, HSize::Byte), 0x0000_AB00);
/// assert_eq!(to_lanes(0x1234, 0x1002, HSize::Half), 0x1234_0000);
/// ```
pub fn to_lanes(value: u32, addr: u32, size: HSize) -> u32 {
    let offset = (addr % 4) * 8;
    (value << offset) & lane_mask(addr, size)
}

/// Extracts a right-aligned value from its byte lanes.
///
/// # Panics
///
/// Panics if `addr` is not aligned to `size`.
///
/// # Examples
///
/// ```
/// use ahbpower_ahb::{from_lanes, HSize};
///
/// assert_eq!(from_lanes(0x0000_AB00, 0x1001, HSize::Byte), 0xAB);
/// assert_eq!(from_lanes(0x1234_0000, 0x1002, HSize::Half), 0x1234);
/// ```
pub fn from_lanes(bus_word: u32, addr: u32, size: HSize) -> u32 {
    let offset = (addr % 4) * 8;
    let width_mask: u32 = match size {
        HSize::Byte => 0xFF,
        HSize::Half => 0xFFFF,
        HSize::Word => 0xFFFF_FFFF,
    };
    (bus_word >> offset) & width_mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_offsets() {
        for (addr, size) in [
            (0u32, HSize::Byte),
            (1, HSize::Byte),
            (2, HSize::Byte),
            (3, HSize::Byte),
            (0, HSize::Half),
            (2, HSize::Half),
            (0, HSize::Word),
        ] {
            let value = 0xDEAD_BEEF
                & match size {
                    HSize::Byte => 0xFF,
                    HSize::Half => 0xFFFF,
                    HSize::Word => 0xFFFF_FFFF,
                };
            let on_bus = to_lanes(value, addr, size);
            assert_eq!(from_lanes(on_bus, addr, size), value, "{addr} {size}");
            assert_eq!(on_bus & !lane_mask(addr, size), 0);
        }
    }

    #[test]
    fn masks_are_disjoint_within_word() {
        let m0 = lane_mask(0, HSize::Byte);
        let m1 = lane_mask(1, HSize::Byte);
        let m2 = lane_mask(2, HSize::Half);
        assert_eq!(m0 & m1, 0);
        assert_eq!((m0 | m1) & m2, 0);
        assert_eq!(m0 | m1 | m2, 0xFFFF_FFFF);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_half_panics() {
        let _ = lane_mask(0x1001, HSize::Half);
    }
}
