//! Property-based tests of burst arithmetic and byte-lane placement.

use ahbpower_ahb::{
    burst_addresses, crosses_1kb_boundary, from_lanes, is_aligned, lane_mask, next_beat_addr,
    to_lanes, HBurst, HSize,
};
use proptest::prelude::*;

fn arb_size() -> impl Strategy<Value = HSize> {
    prop_oneof![Just(HSize::Byte), Just(HSize::Half), Just(HSize::Word)]
}

fn arb_fixed_burst() -> impl Strategy<Value = HBurst> {
    prop_oneof![
        Just(HBurst::Wrap4),
        Just(HBurst::Incr4),
        Just(HBurst::Wrap8),
        Just(HBurst::Incr8),
        Just(HBurst::Wrap16),
        Just(HBurst::Incr16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wrapping bursts stay inside their window and visit distinct,
    /// size-aligned addresses.
    #[test]
    fn wrap_bursts_stay_in_window(start in any::<u32>(), size in arb_size(),
                                  burst in arb_fixed_burst()) {
        prop_assume!(burst.is_wrapping());
        let start = start & !(size.bytes() - 1); // align
        let beats = burst.beats().unwrap();
        let window = size.bytes() * beats as u32;
        let base = start & !(window - 1);
        let seq = burst_addresses(start, size, burst, 0);
        prop_assert_eq!(seq.len(), beats);
        let set: std::collections::HashSet<_> = seq.iter().collect();
        prop_assert_eq!(set.len(), beats, "distinct addresses");
        for a in &seq {
            prop_assert!(*a >= base && *a < base + window, "{a:#x} outside window");
            prop_assert!(is_aligned(*a, size));
        }
    }

    /// Incrementing bursts are strictly increasing by the transfer size.
    #[test]
    fn incr_bursts_increment(start in 0u32..0xFFFF_0000, size in arb_size(),
                             burst in arb_fixed_burst()) {
        prop_assume!(!burst.is_wrapping());
        let start = start & !(size.bytes() - 1);
        let seq = burst_addresses(start, size, burst, 0);
        for w in seq.windows(2) {
            prop_assert_eq!(w[1], w[0] + size.bytes());
        }
    }

    /// `next_beat_addr` chains to the same sequence as `burst_addresses`.
    #[test]
    fn next_beat_addr_chains(start in any::<u32>(), size in arb_size(),
                             burst in arb_fixed_burst()) {
        let start = start & !(size.bytes() - 1);
        let seq = burst_addresses(start, size, burst, 0);
        let mut a = start;
        for expect in &seq {
            prop_assert_eq!(a, *expect);
            a = next_beat_addr(a, size, burst);
        }
    }

    /// The 1 KB rule: a fixed incrementing burst crosses iff its first and
    /// last beats are in different 1 KB blocks.
    #[test]
    fn boundary_rule_matches_definition(start in 0u32..0x10_0000, size in arb_size(),
                                        burst in arb_fixed_burst()) {
        let start = start & !(size.bytes() - 1);
        let seq = burst_addresses(start, size, burst, 0);
        let crosses = crosses_1kb_boundary(start, size, burst);
        let actual = (seq.first().unwrap() >> 10) != (seq.last().unwrap() >> 10);
        if burst.is_wrapping() {
            prop_assert!(!crosses, "wrapping bursts never cross");
        } else {
            prop_assert_eq!(crosses, actual);
        }
    }

    /// Byte lanes: to/from round-trip, and the mask covers exactly the
    /// written lanes.
    #[test]
    fn lanes_round_trip(addr in any::<u32>(), value in any::<u32>(), size in arb_size()) {
        let addr = addr & !(size.bytes() - 1);
        let keep = match size {
            HSize::Byte => 0xFFu32,
            HSize::Half => 0xFFFF,
            HSize::Word => 0xFFFF_FFFF,
        };
        let v = value & keep;
        let on_bus = to_lanes(v, addr, size);
        prop_assert_eq!(from_lanes(on_bus, addr, size), v);
        prop_assert_eq!(on_bus & !lane_mask(addr, size), 0);
        prop_assert_eq!(lane_mask(addr, size).count_ones(), size.bytes() * 8);
    }
}
