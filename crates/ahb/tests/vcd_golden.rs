//! Golden-file test for [`BusTracer::render`]: pins the derived
//! `$timescale`, the initial-value dedup (including the first cycle) and
//! the change stream byte-for-byte.
//!
//! Regenerate the golden after an intentional format change with:
//! `cargo test -p ahbpower-ahb --test vcd_golden -- --ignored regenerate`

use std::fs;
use std::path::PathBuf;

use ahbpower_ahb::{BusSnapshot, BusTracer, HBurst, HResp, HSize, HTrans, MasterId};
use ahbpower_sim::SimTime;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bus_trace.vcd")
}

fn idle(cycle: u64) -> BusSnapshot {
    BusSnapshot {
        cycle,
        haddr: 0,
        htrans: HTrans::Idle,
        hwrite: false,
        hsize: HSize::Byte,
        hburst: HBurst::Single,
        hwdata: 0,
        hrdata: 0,
        hready: true,
        hresp: HResp::Okay,
        hmaster: MasterId(0),
        hmastlock: false,
        hbusreq: 0,
        hgrant: 0b1,
        hsel: 0,
    }
}

/// A deterministic handcrafted sequence: parked grant, a request/handover
/// to master 1, a two-beat INCR write with one wait state, then idle.
fn render_reference_trace() -> String {
    let mut tracer = BusTracer::new(2, 2, SimTime::from_ns(10));
    // Cycle 0: bus parked with master 0 — only hgrant deviates from the
    // declared initials.
    tracer.observe(&idle(0));
    // Cycle 1: master 1 requests.
    let mut s = idle(1);
    s.hbusreq = 0b10;
    tracer.observe(&s);
    // Cycle 2: grant moves to master 1.
    let mut s = idle(2);
    s.hbusreq = 0b10;
    s.hgrant = 0b10;
    tracer.observe(&s);
    // Cycle 3: NONSEQ write, first beat to slave 0.
    let mut s = idle(3);
    s.hgrant = 0b10;
    s.hmaster = MasterId(1);
    s.htrans = HTrans::NonSeq;
    s.hwrite = true;
    s.hsize = HSize::Word;
    s.hburst = HBurst::Incr;
    s.haddr = 0x40;
    s.hsel = 0b1;
    tracer.observe(&s);
    // Cycle 4: SEQ second beat, wait state, write data on the bus.
    let mut s = idle(4);
    s.hgrant = 0b10;
    s.hmaster = MasterId(1);
    s.htrans = HTrans::Seq;
    s.hwrite = true;
    s.hsize = HSize::Word;
    s.hburst = HBurst::Incr;
    s.haddr = 0x44;
    s.hsel = 0b1;
    s.hready = false;
    s.hwdata = 0xCAFE_F00D;
    tracer.observe(&s);
    // Cycle 5: data phase completes, bus goes idle.
    let mut s = idle(5);
    s.hgrant = 0b10;
    s.hmaster = MasterId(1);
    s.hwdata = 0x0000_BEEF;
    tracer.observe(&s);
    assert_eq!(tracer.cycles(), 6);
    tracer.render()
}

#[test]
fn render_matches_golden_file() {
    let golden = fs::read_to_string(golden_path()).expect("golden file exists");
    let actual = render_reference_trace();
    assert_eq!(
        actual, golden,
        "BusTracer::render drifted from tests/golden/bus_trace.vcd; if the \
         change is intentional, regenerate with `cargo test -p ahbpower-ahb \
         --test vcd_golden -- --ignored regenerate`"
    );
}

#[test]
#[ignore = "writes the golden file; run explicitly after intentional format changes"]
fn regenerate() {
    fs::write(golden_path(), render_reference_trace()).expect("write golden");
}
