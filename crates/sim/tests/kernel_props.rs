//! Property-based tests of the discrete-event kernel.

use ahbpower_sim::{Kernel, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A clocked counter counts exactly the number of rising edges,
    /// independent of period and horizon.
    #[test]
    fn counter_counts_posedges(period_ns in 1u64..40, horizon_ns in 1u64..2_000) {
        let period = SimTime::from_ns(period_ns * 2); // keep the period even
        let mut k = Kernel::new();
        let clk = k.clock("clk", period);
        let q = k.signal("q", 0u64);
        k.process("count", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let v = ctx.read(q);
                ctx.write(q, v + 1);
            }
        });
        k.run_until(SimTime::from_ns(horizon_ns)).expect("no delta loops");
        // Rising edges occur at period/2 + k*period for k = 0, 1, ...
        let half = period_ns; // ns
        let expected = if horizon_ns >= half {
            (horizon_ns - half) / (2 * half) + 1
        } else {
            0
        };
        prop_assert_eq!(k.read(q), expected);
        prop_assert_eq!(k.now(), SimTime::from_ns(horizon_ns));
    }

    /// Two identically-constructed kernels produce identical results
    /// (determinism), and chunked runs equal one long run.
    #[test]
    fn chunked_run_equals_single_run(chunks in prop::collection::vec(1u64..500, 1..8)) {
        let build = |k: &mut Kernel| {
            let clk = k.clock("clk", SimTime::from_ns(10));
            let acc = k.signal("acc", 0u64);
            k.process("mix", &[clk.id()], move |ctx| {
                if ctx.posedge(clk) {
                    let v = ctx.read(acc);
                    ctx.write(acc, v.wrapping_mul(6364136223846793005).wrapping_add(1));
                }
            });
            acc
        };
        let total: u64 = chunks.iter().sum();
        let mut k1 = Kernel::new();
        let acc1 = build(&mut k1);
        k1.run_until(SimTime::from_ns(total)).expect("runs");
        let mut k2 = Kernel::new();
        let acc2 = build(&mut k2);
        for c in &chunks {
            k2.run_for(SimTime::from_ns(*c)).expect("runs");
        }
        prop_assert_eq!(k1.read(acc1), k2.read(acc2));
        prop_assert_eq!(k1.now(), k2.now());
    }

    /// Delta-cycle settling: a chain of N zero-delay stages settles to the
    /// correct value regardless of length.
    #[test]
    fn combinational_chain_settles(n in 1usize..30, input in any::<u32>()) {
        let mut k = Kernel::new();
        let src = k.signal("src", 0u32);
        let mut prev = src;
        for i in 0..n {
            let next = k.signal(&format!("s{i}"), 0u32);
            k.process(&format!("p{i}"), &[prev.id()], move |ctx| {
                let v = ctx.read(prev);
                ctx.write(next, v.wrapping_add(1));
            });
            prev = next;
        }
        k.write(src, input);
        k.run_until(SimTime::from_ns(1)).expect("no loops");
        prop_assert_eq!(k.read(prev), input.wrapping_add(n as u32));
        // The chain needed at least n delta cycles.
        prop_assert!(k.stats().deltas >= n as u64);
    }

    /// Timed wake-ups fire exactly once each, in order.
    #[test]
    fn wakeups_fire_once_in_order(mut times in prop::collection::vec(1u64..10_000, 1..20)) {
        times.sort_unstable();
        times.dedup();
        let mut k = Kernel::new();
        let log = k.signal("log", 0usize);
        let expected = times.clone();
        let mut iter = 0usize;
        let checker = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let c2 = checker.clone();
        let pid = k.process("waker", &[], move |ctx| {
            if ctx.now() > SimTime::ZERO {
                c2.borrow_mut().push(ctx.now().as_ps());
                let v = ctx.read(log);
                ctx.write(log, v + 1);
            }
            let _ = iter;
            iter += 1;
        });
        for t in &times {
            k.wake_at(pid, SimTime::from_ps(*t));
        }
        k.run_until(SimTime::from_ps(20_000)).expect("runs");
        prop_assert_eq!(k.read(log), expected.len());
        prop_assert_eq!(checker.borrow().clone(), expected);
    }
}

#[test]
fn vcd_contains_every_committed_change() {
    let mut k = Kernel::new();
    let clk = k.clock("clk", SimTime::from_ns(2));
    let data = k.signal("data", 0u8);
    k.trace(clk);
    k.trace(data);
    k.process("drv", &[clk.id()], move |ctx| {
        if ctx.posedge(clk) {
            let d = ctx.read(data);
            ctx.write(data, d.wrapping_add(3));
        }
    });
    k.run_until(SimTime::from_ns(20)).unwrap();
    let vcd = k.vcd().expect("traced");
    // 10 rising edges -> 10 data changes, each rendered as b... lines.
    let changes = vcd
        .lines()
        .filter(|l| l.starts_with('b') && !l.contains("00000000 "))
        .count();
    assert!(changes >= 10, "vcd:\n{vcd}");
    assert!(vcd.contains("$enddefinitions"));
}
