//! Simulation time types.
//!
//! The kernel measures time in integer **picoseconds**, which is fine-grained
//! enough for multi-GHz clocks while leaving headroom for ~0.2 years of
//! simulated time in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An absolute simulation timestamp, in picoseconds since time zero.
///
/// # Examples
///
/// ```
/// use ahbpower_sim::SimTime;
///
/// let t = SimTime::from_ns(10);
/// assert_eq!(t.as_ps(), 10_000);
/// assert_eq!(t + SimTime::from_ns(5), SimTime::from_ns(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Returns the timestamp in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the timestamp in seconds as a float (for power = energy/time).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0 ps")
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{} ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{} us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{} ns", ps / 1_000)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_us(50).as_ns(), 50_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(13));
        assert_eq!(a - b, SimTime::from_ns(7));
        assert_eq!(b * 4, SimTime::from_ns(12));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_ps(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_ps(1).checked_add(SimTime::from_ps(2)),
            Some(SimTime::from_ps(3))
        );
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0 ps");
        assert_eq!(SimTime::from_ps(5).to_string(), "5 ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5 ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5 us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5 ms");
    }

    #[test]
    fn seconds_conversion() {
        let t = SimTime::from_us(4);
        assert!((t.as_secs_f64() - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
