//! The [`SignalValue`] trait: what can live on a kernel signal.

use std::fmt;

/// Values that can be carried by a [`crate::Signal`].
///
/// Any `Clone + PartialEq + Debug + 'static` type qualifies; the optional
/// VCD hooks let a value appear in waveform traces. Types without a natural
/// bit-level representation simply stay untraced.
///
/// # Examples
///
/// ```
/// use ahbpower_sim::SignalValue;
///
/// assert_eq!(bool::vcd_width(), Some(1));
/// assert_eq!(true.vcd_bits(), "1");
/// assert_eq!(u8::vcd_width(), Some(8));
/// assert_eq!(5u8.vcd_bits(), "00000101");
/// ```
pub trait SignalValue: Clone + PartialEq + fmt::Debug + 'static {
    /// Bit width for VCD tracing, or `None` if the type is not traceable.
    fn vcd_width() -> Option<usize> {
        None
    }

    /// Binary string (MSB first) for VCD tracing. Only meaningful when
    /// [`SignalValue::vcd_width`] returns `Some`.
    fn vcd_bits(&self) -> String {
        String::new()
    }
}

impl SignalValue for bool {
    fn vcd_width() -> Option<usize> {
        Some(1)
    }

    fn vcd_bits(&self) -> String {
        if *self {
            "1".into()
        } else {
            "0".into()
        }
    }
}

macro_rules! impl_signal_value_uint {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(
            impl SignalValue for $t {
                fn vcd_width() -> Option<usize> {
                    Some($w)
                }

                fn vcd_bits(&self) -> String {
                    format!(concat!("{:0", stringify!($w), "b}"), self)
                }
            }
        )*
    };
}

impl_signal_value_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

impl SignalValue for i32 {}
impl SignalValue for i64 {}
impl SignalValue for usize {}
impl SignalValue for String {}
impl SignalValue for () {}

impl<T: SignalValue> SignalValue for Option<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_vcd() {
        assert_eq!(bool::vcd_width(), Some(1));
        assert_eq!(true.vcd_bits(), "1");
        assert_eq!(false.vcd_bits(), "0");
    }

    #[test]
    fn uint_vcd_widths() {
        assert_eq!(u8::vcd_width(), Some(8));
        assert_eq!(u16::vcd_width(), Some(16));
        assert_eq!(u32::vcd_width(), Some(32));
        assert_eq!(u64::vcd_width(), Some(64));
    }

    #[test]
    fn uint_vcd_bits_are_padded() {
        assert_eq!(0xA5u8.vcd_bits(), "10100101");
        assert_eq!(1u32.vcd_bits().len(), 32);
        assert_eq!(u64::MAX.vcd_bits(), "1".repeat(64));
    }

    #[test]
    fn untraceable_types_default() {
        assert_eq!(String::vcd_width(), None);
        assert_eq!(<Option<u8>>::vcd_width(), None);
        assert_eq!("x".to_string().vcd_bits(), "");
    }
}
