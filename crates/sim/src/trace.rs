//! Value-change tracing (VCD output).

use crate::time::SimTime;

/// Handle to a variable declared in a [`VcdTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcdVarId(usize);

/// Accumulates value changes and renders them as a
/// [VCD](https://en.wikipedia.org/wiki/Value_change_dump) document.
///
/// The kernel feeds this automatically for signals registered with
/// [`crate::Kernel::trace`]; it can also be used standalone (e.g. the AHB
/// crate's bus tracer) via [`VcdTrace::add_var`] / [`VcdTrace::record_var`].
///
/// # Examples
///
/// ```
/// use ahbpower_sim::{SimTime, VcdTrace};
///
/// let mut t = VcdTrace::new();
/// let clk = t.add_var("clk", 1, "0");
/// t.record_var(SimTime::from_ns(5), clk, "1");
/// assert!(t.render().contains("$var wire 1"));
/// ```
#[derive(Debug)]
pub struct VcdTrace {
    vars: Vec<VcdVar>,
    /// (time, var, bits)
    changes: Vec<(SimTime, VcdVarId, String)>,
    /// Picoseconds per VCD tick (the `$timescale`).
    timescale_ps: u64,
}

impl Default for VcdTrace {
    fn default() -> Self {
        VcdTrace {
            vars: Vec::new(),
            changes: Vec::new(),
            timescale_ps: 1,
        }
    }
}

/// The VCD `$timescale` label for a tick of `ps` picoseconds, or `None`
/// when `ps` is not a legal magnitude (1, 10 or 100 of ps/ns/us/ms).
fn timescale_label(ps: u64) -> Option<String> {
    let (unit_ps, unit) = if ps.is_multiple_of(1_000_000_000) {
        (1_000_000_000, "ms")
    } else if ps.is_multiple_of(1_000_000) {
        (1_000_000, "us")
    } else if ps.is_multiple_of(1_000) {
        (1_000, "ns")
    } else {
        (1, "ps")
    };
    let magnitude = ps / unit_ps;
    matches!(magnitude, 1 | 10 | 100).then(|| format!("{magnitude}{unit}"))
}

#[derive(Debug)]
struct VcdVar {
    name: String,
    width: usize,
    code: String,
    initial: String,
}

/// Builds a short printable VCD identifier from an index.
fn code_for(mut n: usize) -> String {
    // Printable ASCII identifiers: '!' (33) .. '~' (126), base-94.
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        VcdTrace::default()
    }

    /// Declares a variable. `initial` is its value (MSB-first bits) at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn add_var(&mut self, name: &str, width: usize, initial: &str) -> VcdVarId {
        assert!(width > 0, "vcd variables need a positive width");
        let id = VcdVarId(self.vars.len());
        self.vars.push(VcdVar {
            name: name.to_string(),
            width,
            code: code_for(id.0),
            initial: initial.to_string(),
        });
        id
    }

    /// Records a value change at `time` (times must be non-decreasing for a
    /// well-formed dump; this is the caller's responsibility).
    pub fn record_var(&mut self, time: SimTime, id: VcdVarId, bits: &str) {
        self.changes.push((time, id, bits.to_string()));
    }

    /// Sets the dump's `$timescale`: recorded change times render in
    /// units of `timescale` (truncating division — callers should pick a
    /// timescale that divides their sample period). The default is 1 ps.
    ///
    /// # Panics
    ///
    /// Panics unless `timescale` is a legal VCD magnitude: 1, 10 or 100
    /// of ps/ns/us/ms.
    pub fn set_timescale(&mut self, timescale: SimTime) {
        assert!(
            timescale_label(timescale.as_ps()).is_some(),
            "VCD timescales must be 1, 10 or 100 of ps/ns/us/ms"
        );
        self.timescale_ps = timescale.as_ps();
    }

    /// The current `$timescale` as a tick duration.
    pub fn timescale(&self) -> SimTime {
        SimTime::from_ps(self.timescale_ps)
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the trace as a VCD document with the configured
    /// [`timescale`](Self::set_timescale) (1 ps unless overridden).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let label =
            timescale_label(self.timescale_ps).expect("set_timescale enforces a legal magnitude");
        out.push_str(&format!("$timescale {label} $end\n"));
        out.push_str("$scope module top $end\n");
        for var in &self.vars {
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                var.width, var.code, var.name
            ));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str("#0\n$dumpvars\n");
        for var in &self.vars {
            push_change(&mut out, var.width, &var.initial, &var.code);
        }
        out.push_str("$end\n");
        let mut last_time: Option<SimTime> = None;
        for (time, id, bits) in &self.changes {
            if last_time != Some(*time) {
                out.push_str(&format!("#{}\n", time.as_ps() / self.timescale_ps));
                last_time = Some(*time);
            }
            let var = &self.vars[id.0];
            push_change(&mut out, var.width, bits, &var.code);
        }
        out
    }
}

fn push_change(out: &mut String, width: usize, bits: &str, code: &str) {
    if width == 1 {
        out.push_str(bits);
        out.push_str(code);
    } else {
        out.push('b');
        out.push_str(bits);
        out.push(' ');
        out.push_str(code);
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let c = code_for(n);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn render_contains_header_and_changes() {
        let mut t = VcdTrace::new();
        let clk = t.add_var("clk", 1, "0");
        let addr = t.add_var("addr", 8, "00000000");
        t.record_var(SimTime::from_ps(5), clk, "1");
        t.record_var(SimTime::from_ps(5), addr, "00000001");
        t.record_var(SimTime::from_ps(10), clk, "0");
        let vcd = t.render();
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("$var wire 8 \" addr $end"));
        assert!(vcd.contains("#5\n1!\nb00000001 \"\n#10\n0!"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.var_count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn timescale_scales_and_labels_change_times() {
        let mut t = VcdTrace::new();
        let clk = t.add_var("clk", 1, "0");
        t.record_var(SimTime::from_ns(10), clk, "1");
        t.record_var(SimTime::from_ns(20), clk, "0");
        assert_eq!(t.timescale(), SimTime::from_ps(1));
        t.set_timescale(SimTime::from_ns(10));
        assert_eq!(t.timescale(), SimTime::from_ns(10));
        let vcd = t.render();
        assert!(vcd.contains("$timescale 10ns $end"));
        assert!(vcd.contains("#1\n1!\n#2\n0!"), "{vcd}");
    }

    #[test]
    fn timescale_labels_cover_legal_magnitudes() {
        for (ps, label) in [
            (1, "1ps"),
            (100, "100ps"),
            (1_000, "1ns"),
            (10_000, "10ns"),
            (1_000_000, "1us"),
            (100_000_000_000, "100ms"),
        ] {
            assert_eq!(timescale_label(ps).as_deref(), Some(label));
        }
        for ps in [0, 2, 5_000, 30_000, 1_000_000_000_000] {
            assert_eq!(timescale_label(ps), None, "{ps} ps is not a legal tick");
        }
    }

    #[test]
    #[should_panic(expected = "1, 10 or 100")]
    fn illegal_timescale_panics() {
        let mut t = VcdTrace::new();
        t.set_timescale(SimTime::from_ps(5_000));
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_var_panics() {
        let mut t = VcdTrace::new();
        let _ = t.add_var("x", 0, "");
    }
}
