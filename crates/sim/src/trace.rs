//! Value-change tracing (VCD output).

use crate::time::SimTime;

/// Handle to a variable declared in a [`VcdTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcdVarId(usize);

/// Accumulates value changes and renders them as a
/// [VCD](https://en.wikipedia.org/wiki/Value_change_dump) document.
///
/// The kernel feeds this automatically for signals registered with
/// [`crate::Kernel::trace`]; it can also be used standalone (e.g. the AHB
/// crate's bus tracer) via [`VcdTrace::add_var`] / [`VcdTrace::record_var`].
///
/// # Examples
///
/// ```
/// use ahbpower_sim::{SimTime, VcdTrace};
///
/// let mut t = VcdTrace::new();
/// let clk = t.add_var("clk", 1, "0");
/// t.record_var(SimTime::from_ns(5), clk, "1");
/// assert!(t.render().contains("$var wire 1"));
/// ```
#[derive(Debug, Default)]
pub struct VcdTrace {
    vars: Vec<VcdVar>,
    /// (time, var, bits)
    changes: Vec<(SimTime, VcdVarId, String)>,
}

#[derive(Debug)]
struct VcdVar {
    name: String,
    width: usize,
    code: String,
    initial: String,
}

/// Builds a short printable VCD identifier from an index.
fn code_for(mut n: usize) -> String {
    // Printable ASCII identifiers: '!' (33) .. '~' (126), base-94.
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        VcdTrace::default()
    }

    /// Declares a variable. `initial` is its value (MSB-first bits) at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn add_var(&mut self, name: &str, width: usize, initial: &str) -> VcdVarId {
        assert!(width > 0, "vcd variables need a positive width");
        let id = VcdVarId(self.vars.len());
        self.vars.push(VcdVar {
            name: name.to_string(),
            width,
            code: code_for(id.0),
            initial: initial.to_string(),
        });
        id
    }

    /// Records a value change at `time` (times must be non-decreasing for a
    /// well-formed dump; this is the caller's responsibility).
    pub fn record_var(&mut self, time: SimTime, id: VcdVarId, bits: &str) {
        self.changes.push((time, id, bits.to_string()));
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the trace as a VCD document with a 1 ps timescale.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        out.push_str("$scope module top $end\n");
        for var in &self.vars {
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                var.width, var.code, var.name
            ));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str("#0\n$dumpvars\n");
        for var in &self.vars {
            push_change(&mut out, var.width, &var.initial, &var.code);
        }
        out.push_str("$end\n");
        let mut last_time: Option<SimTime> = None;
        for (time, id, bits) in &self.changes {
            if last_time != Some(*time) {
                out.push_str(&format!("#{}\n", time.as_ps()));
                last_time = Some(*time);
            }
            let var = &self.vars[id.0];
            push_change(&mut out, var.width, bits, &var.code);
        }
        out
    }
}

fn push_change(out: &mut String, width: usize, bits: &str, code: &str) {
    if width == 1 {
        out.push_str(bits);
        out.push_str(code);
    } else {
        out.push('b');
        out.push_str(bits);
        out.push(' ');
        out.push_str(code);
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let c = code_for(n);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn render_contains_header_and_changes() {
        let mut t = VcdTrace::new();
        let clk = t.add_var("clk", 1, "0");
        let addr = t.add_var("addr", 8, "00000000");
        t.record_var(SimTime::from_ps(5), clk, "1");
        t.record_var(SimTime::from_ps(5), addr, "00000001");
        t.record_var(SimTime::from_ps(10), clk, "0");
        let vcd = t.render();
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("$var wire 8 \" addr $end"));
        assert!(vcd.contains("#5\n1!\nb00000001 \"\n#10\n0!"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.var_count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_var_panics() {
        let mut t = VcdTrace::new();
        let _ = t.add_var("x", 0, "");
    }
}
