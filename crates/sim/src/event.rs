//! Timed events: the kernel's future-time agenda.

use std::cmp::Ordering;

use crate::process::ProcessId;
use crate::signal::SignalId;
use crate::time::SimTime;

/// What happens when a timed event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Make a process runnable.
    Wake(ProcessId),
    /// Toggle a `Signal<bool>` and reschedule after `half_period`
    /// (free-running clock generator).
    ClockToggle {
        signal: SignalId,
        half_period: SimTime,
    },
}

/// An event scheduled at an absolute time. `seq` breaks ties so that events
/// scheduled earlier fire earlier (stable FIFO order at equal timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimedEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for TimedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(t: u64, seq: u64) -> TimedEvent {
        TimedEvent {
            time: SimTime::from_ps(t),
            seq,
            kind: EventKind::Wake(ProcessId(0)),
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(ev(30, 0));
        h.push(ev(10, 1));
        h.push(ev(20, 2));
        assert_eq!(h.pop().unwrap().time, SimTime::from_ps(10));
        assert_eq!(h.pop().unwrap().time, SimTime::from_ps(20));
        assert_eq!(h.pop().unwrap().time, SimTime::from_ps(30));
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut h = BinaryHeap::new();
        h.push(ev(10, 5));
        h.push(ev(10, 2));
        h.push(ev(10, 9));
        assert_eq!(h.pop().unwrap().seq, 2);
        assert_eq!(h.pop().unwrap().seq, 5);
        assert_eq!(h.pop().unwrap().seq, 9);
    }
}
