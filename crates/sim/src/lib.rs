//! # ahbpower-sim — discrete-event simulation kernel
//!
//! A compact, SystemC-style discrete-event simulation kernel: typed
//! [`Signal`]s with evaluate/update (delta-cycle) semantics, [`Kernel`]
//! processes with static sensitivity lists, free-running clocks, and VCD
//! tracing. It is the executable-specification substrate on which the
//! AMBA AHB model of the `ahbpower-ahb` crate and the power-analysis
//! methodology of the `ahbpower` crate run.
//!
//! ## Quick start
//!
//! ```
//! use ahbpower_sim::{Kernel, SimTime};
//!
//! let mut k = Kernel::new();
//! let clk = k.clock("clk", SimTime::from_ns(10)); // 100 MHz
//! let q = k.signal("q", 0u32);
//! k.process("counter", &[clk.id()], move |ctx| {
//!     if ctx.posedge(clk) {
//!         let v = ctx.read(q);
//!         ctx.write(q, v + 1);
//!     }
//! });
//! k.run_until(SimTime::from_us(1))?;
//! assert_eq!(k.read(q), 100);
//! # Ok::<(), ahbpower_sim::SimError>(())
//! ```
//!
//! ## Semantics
//!
//! Writes made during a delta cycle are buffered and commit at the update
//! phase; processes sensitive to a signal run in the *next* delta only if the
//! committed value actually changed. Zero-delay feedback loops are caught by
//! a configurable delta limit ([`Kernel::set_delta_limit`]) instead of
//! hanging the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod kernel;
mod process;
mod profile;
mod signal;
mod time;
mod trace;
mod value;

pub use kernel::{Kernel, KernelStats, ProcCtx, SimError};
pub use process::ProcessId;
pub use profile::{KernelProfile, SpanStat};
pub use signal::{Signal, SignalId};
pub use time::SimTime;
pub use trace::{VcdTrace, VcdVarId};
pub use value::SignalValue;
