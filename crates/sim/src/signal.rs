//! Typed signals with SystemC-style evaluate/update semantics.
//!
//! A [`Signal`] is a cheap, `Copy` handle; the value itself lives inside the
//! kernel. Writes performed during a delta cycle become visible only at the
//! following update phase, exactly like `sc_signal`.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

use crate::time::SimTime;
use crate::value::SignalValue;

/// Identifier of a signal inside a [`crate::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// A typed handle to a signal owned by a [`crate::Kernel`].
///
/// # Examples
///
/// ```
/// use ahbpower_sim::Kernel;
///
/// let mut k = Kernel::new();
/// let s = k.signal("data", 0u32);
/// assert_eq!(k.read(s), 0);
/// ```
pub struct Signal<T> {
    pub(crate) id: SignalId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Signal<T> {
    pub(crate) fn new(id: SignalId) -> Self {
        Signal {
            id,
            _marker: PhantomData,
        }
    }

    /// The untyped id of this signal.
    pub fn id(&self) -> SignalId {
        self.id
    }
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Signal<T> {}

impl<T> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal({})", self.id)
    }
}

impl<T> PartialEq for Signal<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T> Eq for Signal<T> {}

/// Storage for one signal: committed value + pending next value.
pub(crate) struct Slot<T: SignalValue> {
    pub(crate) name: String,
    pub(crate) current: T,
    pub(crate) next: Option<T>,
    pub(crate) last_change: SimTime,
    /// True iff the most recent update phase changed this signal's value.
    pub(crate) recently_changed: bool,
}

impl<T: SignalValue> Slot<T> {
    pub(crate) fn new(name: String, initial: T) -> Self {
        Slot {
            name,
            current: initial,
            next: None,
            last_change: SimTime::ZERO,
            recently_changed: false,
        }
    }
}

/// Object-safe view of a [`Slot`] used by the kernel's update machinery.
pub(crate) trait AnySlot {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn name(&self) -> &str;
    /// Commits the pending value if any. Returns true iff the committed
    /// value differs from the previous one.
    fn apply_update(&mut self, now: SimTime) -> bool;
    fn clear_recent_change(&mut self);
    fn recently_changed(&self) -> bool;
    fn last_change(&self) -> SimTime;
    /// VCD bit width, if the carried type is traceable.
    fn vcd_width(&self) -> Option<usize>;
    /// Current value as VCD bits (MSB first).
    fn vcd_bits(&self) -> String;
    fn debug_value(&self) -> String;
}

impl<T: SignalValue> AnySlot for Slot<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn apply_update(&mut self, now: SimTime) -> bool {
        match self.next.take() {
            Some(v) if v != self.current => {
                self.current = v;
                self.last_change = now;
                self.recently_changed = true;
                true
            }
            _ => false,
        }
    }

    fn clear_recent_change(&mut self) {
        self.recently_changed = false;
    }

    fn recently_changed(&self) -> bool {
        self.recently_changed
    }

    fn last_change(&self) -> SimTime {
        self.last_change
    }

    fn vcd_width(&self) -> Option<usize> {
        T::vcd_width()
    }

    fn vcd_bits(&self) -> String {
        self.current.vcd_bits()
    }

    fn debug_value(&self) -> String {
        format!("{:?}", self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_update_commits_only_changes() {
        let mut s = Slot::new("x".into(), 1u32);
        assert!(!s.apply_update(SimTime::from_ns(1)));
        s.next = Some(1);
        assert!(!s.apply_update(SimTime::from_ns(2)));
        assert_eq!(s.last_change, SimTime::ZERO);
        s.next = Some(7);
        assert!(s.apply_update(SimTime::from_ns(3)));
        assert_eq!(s.current, 7);
        assert_eq!(s.last_change, SimTime::from_ns(3));
        assert!(s.recently_changed);
        s.clear_recent_change();
        assert!(!s.recently_changed);
    }

    #[test]
    fn any_slot_vcd_hooks() {
        let s = Slot::new("b".into(), true);
        let any: &dyn AnySlot = &s;
        assert_eq!(any.vcd_width(), Some(1));
        assert_eq!(any.vcd_bits(), "1");
        assert_eq!(any.debug_value(), "true");
        assert_eq!(any.name(), "b");
    }

    #[test]
    fn signal_handle_is_copy_and_eq() {
        let a: Signal<u8> = Signal::new(SignalId(3));
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.id(), SignalId(3));
        assert_eq!(format!("{a:?}"), "Signal(sig#3)");
    }
}
