//! Opt-in wall-clock profiling of the kernel hot loop.
//!
//! When enabled via [`crate::Kernel::enable_profiling`], the kernel times
//! every delta cycle and every process activation. The accumulators are
//! pre-sized plain structs — the hot path performs two `Instant::now()`
//! calls and a few additions per measured span, with no allocation and no
//! hashing. When profiling is off the kernel pays a single branch per
//! delta cycle.

use std::fmt;
use std::time::Duration;

/// Accumulated timing for one kind of span (a process body, a delta
/// cycle, an update phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span executed.
    pub count: u64,
    /// Total wall-clock time spent inside the span.
    pub total: Duration,
    /// Longest single execution.
    pub max: Duration,
}

impl SpanStat {
    /// Folds one measured execution into the accumulator.
    #[inline]
    pub fn record(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total += elapsed;
        if elapsed > self.max {
            self.max = elapsed;
        }
    }

    /// Mean time per execution (zero when the span never ran).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

/// Wall-clock profile of a kernel run: per-delta-cycle timing plus a
/// per-process breakdown of where the evaluate phases spend their time.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    /// Whole delta cycles (evaluate + update + notify).
    pub delta: SpanStat,
    /// Update-and-notify phases alone.
    pub update: SpanStat,
    /// Per-process body execution, indexed by process index.
    pub per_process: Vec<SpanStat>,
}

impl KernelProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        KernelProfile::default()
    }

    /// The accumulator for process index `i` (see
    /// [`KernelProfile::per_process`]), growing the table if the process
    /// was registered after profiling started.
    #[inline]
    pub fn process_mut(&mut self, i: usize) -> &mut SpanStat {
        if self.per_process.len() <= i {
            self.per_process.resize(i + 1, SpanStat::default());
        }
        &mut self.per_process[i]
    }

    /// Total time attributed to process bodies.
    pub fn process_time(&self) -> Duration {
        self.per_process.iter().map(|s| s.total).sum()
    }

    /// `(process index, stat)` rows sorted by descending total time.
    pub fn hottest_processes(&self) -> Vec<(usize, SpanStat)> {
        let mut rows: Vec<(usize, SpanStat)> = self
            .per_process
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, s)| s.count > 0)
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total));
        rows
    }
}

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deltas: {} ({:?} total, {:?} max)",
            self.delta.count, self.delta.total, self.delta.max
        )?;
        writeln!(
            f,
            "updates: {} ({:?} total)",
            self.update.count, self.update.total
        )?;
        for (i, s) in self.hottest_processes() {
            writeln!(
                f,
                "process #{i}: {} activations, {:?} total, {:?} max",
                s.count, s.total, s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_accumulates() {
        let mut s = SpanStat::default();
        s.record(Duration::from_micros(2));
        s.record(Duration::from_micros(4));
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_micros(6));
        assert_eq!(s.max, Duration::from_micros(4));
        assert_eq!(s.mean(), Duration::from_micros(3));
        assert_eq!(SpanStat::default().mean(), Duration::ZERO);
    }

    #[test]
    fn profile_grows_per_process_table() {
        let mut p = KernelProfile::new();
        p.process_mut(3).record(Duration::from_nanos(10));
        assert_eq!(p.per_process.len(), 4);
        assert_eq!(p.per_process[3].count, 1);
        assert_eq!(p.process_time(), Duration::from_nanos(10));
        let hot = p.hottest_processes();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, 3);
    }

    #[test]
    fn display_lists_hot_processes() {
        let mut p = KernelProfile::new();
        p.delta.record(Duration::from_micros(1));
        p.process_mut(0).record(Duration::from_micros(1));
        let s = p.to_string();
        assert!(s.contains("deltas: 1"));
        assert!(s.contains("process #0"));
    }
}
