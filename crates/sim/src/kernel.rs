//! The discrete-event simulation kernel.
//!
//! Semantics mirror SystemC's evaluate/update model:
//!
//! 1. **Evaluate**: every runnable process executes; signal writes are
//!    buffered as *next* values and are not yet visible.
//! 2. **Update**: buffered writes commit; signals whose value actually
//!    changed notify their sensitive processes, which become runnable in the
//!    next *delta cycle* at the same simulation time.
//! 3. When no process is runnable, time advances to the earliest timed event.

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use crate::event::{EventKind, TimedEvent};
use crate::process::{Process, ProcessBody, ProcessId};
use crate::profile::KernelProfile;
use crate::signal::{AnySlot, Signal, SignalId, Slot};
use crate::time::SimTime;
use crate::trace::{VcdTrace, VcdVarId};
use crate::value::SignalValue;

/// Errors produced while running a [`Kernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The delta-cycle count at a single timestamp exceeded the configured
    /// limit — almost always a zero-delay feedback loop in the model.
    DeltaLimit {
        /// Timestamp at which the model failed to settle.
        time: SimTime,
        /// The limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaLimit { time, limit } => write!(
                f,
                "model did not settle at {time}: more than {limit} delta cycles (combinational loop?)"
            ),
        }
    }
}

impl Error for SimError {}

/// Cumulative kernel statistics, useful for overhead studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Total process activations.
    pub activations: u64,
    /// Total committed signal value changes.
    pub signal_changes: u64,
}

/// The simulation kernel: owns signals, processes and the event agenda.
///
/// # Examples
///
/// ```
/// use ahbpower_sim::{Kernel, SimTime};
///
/// let mut k = Kernel::new();
/// let clk = k.clock("clk", SimTime::from_ns(10));
/// let count = k.signal("count", 0u32);
/// k.process("counter", &[clk.id()], move |ctx| {
///     if ctx.posedge(clk) {
///         let c = ctx.read(count);
///         ctx.write(count, c + 1);
///     }
/// });
/// k.run_until(SimTime::from_ns(100))?;
/// assert_eq!(k.read(count), 10);
/// # Ok::<(), ahbpower_sim::SimError>(())
/// ```
pub struct Kernel {
    now: SimTime,
    slots: Vec<Box<dyn AnySlot>>,
    processes: Vec<Process>,
    /// Per-signal list of sensitive processes.
    sensitive: Vec<Vec<ProcessId>>,
    /// Per-signal one-shot waiters (dynamic sensitivity).
    waiters: Vec<Vec<ProcessId>>,
    queue: BinaryHeap<TimedEvent>,
    seq: u64,
    runnable: Vec<ProcessId>,
    pending_writes: Vec<SignalId>,
    recently_changed: Vec<SignalId>,
    deltas_at_now: u64,
    delta_limit: u64,
    stop_requested: bool,
    initialized: bool,
    tracer: Option<VcdTrace>,
    /// Signals with a declared VCD variable.
    traced: Vec<Option<VcdVarId>>,
    stats: KernelStats,
    profiler: Option<KernelProfile>,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("signals", &self.slots.len())
            .field("processes", &self.processes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Kernel {
    /// Creates an empty kernel at time zero.
    pub fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            slots: Vec::new(),
            processes: Vec::new(),
            sensitive: Vec::new(),
            waiters: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            runnable: Vec::new(),
            pending_writes: Vec::new(),
            recently_changed: Vec::new(),
            deltas_at_now: 0,
            delta_limit: 10_000,
            stop_requested: false,
            initialized: false,
            tracer: None,
            traced: Vec::new(),
            stats: KernelStats::default(),
            profiler: None,
        }
    }

    /// Enables wall-clock profiling of delta cycles and process bodies.
    /// Call before running; accumulators cover everything executed from
    /// this point on.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(KernelProfile::new());
        }
    }

    /// The accumulated profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&KernelProfile> {
        self.profiler.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Sets the maximum number of delta cycles allowed at one timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn set_delta_limit(&mut self, limit: u64) {
        assert!(limit > 0, "delta limit must be positive");
        self.delta_limit = limit;
    }

    /// Creates a new signal carrying `initial`.
    pub fn signal<T: SignalValue>(&mut self, name: &str, initial: T) -> Signal<T> {
        let id = SignalId(self.slots.len() as u32);
        self.slots
            .push(Box::new(Slot::new(name.to_string(), initial)));
        self.sensitive.push(Vec::new());
        self.waiters.push(Vec::new());
        Signal::new(id)
    }

    fn slot<T: SignalValue>(&self, s: Signal<T>) -> &Slot<T> {
        self.slots[s.id.index()]
            .as_any()
            .downcast_ref::<Slot<T>>()
            .expect("signal handle used with a kernel of a different type")
    }

    fn slot_mut<T: SignalValue>(&mut self, s: Signal<T>) -> &mut Slot<T> {
        self.slots[s.id.index()]
            .as_any_mut()
            .downcast_mut::<Slot<T>>()
            .expect("signal handle used with a kernel of a different type")
    }

    /// Reads the committed value of a signal.
    pub fn read<T: SignalValue>(&self, s: Signal<T>) -> T {
        self.slot(s).current.clone()
    }

    /// Buffers a write; it commits at the next update phase.
    pub fn write<T: SignalValue>(&mut self, s: Signal<T>, value: T) {
        let slot = self.slot_mut(s);
        if slot.next.is_none() {
            self.pending_writes.push(s.id);
        }
        let slot = self.slot_mut(s);
        slot.next = Some(value);
    }

    /// True iff `s` changed value in the most recent update phase.
    pub fn changed<T: SignalValue>(&self, s: Signal<T>) -> bool {
        self.slots[s.id.index()].recently_changed()
    }

    /// True iff `s` rose to `true` in the most recent update phase.
    pub fn posedge(&self, s: Signal<bool>) -> bool {
        self.changed(s) && self.read(s)
    }

    /// True iff `s` fell to `false` in the most recent update phase.
    pub fn negedge(&self, s: Signal<bool>) -> bool {
        self.changed(s) && !self.read(s)
    }

    /// Time of the last committed change of `s`.
    pub fn last_change<T: SignalValue>(&self, s: Signal<T>) -> SimTime {
        self.slots[s.id.index()].last_change()
    }

    /// The name a signal was registered with.
    pub fn signal_name(&self, id: SignalId) -> &str {
        self.slots[id.index()].name()
    }

    /// Debug rendering of a signal's current value (for diagnostics).
    pub fn signal_value_string(&self, id: SignalId) -> String {
        self.slots[id.index()].debug_value()
    }

    /// The name a process was registered with.
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.processes[pid.index()].name
    }

    /// The static sensitivity list of a process.
    pub fn process_sensitivity(&self, pid: ProcessId) -> &[SignalId] {
        &self.processes[pid.index()].sensitivity
    }

    /// Registers a process sensitive to the given signals. Every process also
    /// runs once during initialization at time zero.
    pub fn process(
        &mut self,
        name: &str,
        sensitivity: &[SignalId],
        body: impl FnMut(&mut ProcCtx<'_>) + 'static,
    ) -> ProcessId {
        let pid = ProcessId(self.processes.len() as u32);
        let sens: Vec<SignalId> = sensitivity.to_vec();
        for id in &sens {
            self.sensitive[id.index()].push(pid);
        }
        self.processes.push(Process::new(
            name.to_string(),
            sens,
            Box::new(body) as ProcessBody,
        ));
        pid
    }

    /// Schedules a process wake-up at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn wake_at(&mut self, pid: ProcessId, at: SimTime) {
        assert!(at >= self.now, "cannot schedule a wake-up in the past");
        self.push_event(at, EventKind::Wake(pid));
    }

    /// Registers `pid` to run once when `id` next changes value (dynamic
    /// sensitivity; cleared after firing).
    pub fn wake_on_change(&mut self, pid: ProcessId, id: SignalId) {
        if !self.waiters[id.index()].contains(&pid) {
            self.waiters[id.index()].push(pid);
        }
    }

    /// Creates a free-running clock signal: starts low, first rising edge at
    /// `period / 2`, then toggles every half period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or odd (in picoseconds).
    pub fn clock(&mut self, name: &str, period: SimTime) -> Signal<bool> {
        assert!(period > SimTime::ZERO, "clock period must be positive");
        assert!(
            period.as_ps().is_multiple_of(2),
            "clock period must be an even number of picoseconds"
        );
        let half = SimTime::from_ps(period.as_ps() / 2);
        let sig = self.signal(name, false);
        self.push_event(
            self.now + half,
            EventKind::ClockToggle {
                signal: sig.id,
                half_period: half,
            },
        );
        sig
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(TimedEvent { time, seq, kind });
    }

    /// Requests the run loop to stop after the current delta cycle.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// True if a stop was requested (and not yet cleared by a new run).
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }

    /// Enables VCD tracing of `s`. Call before running for a complete dump.
    pub fn trace<T: SignalValue>(&mut self, s: Signal<T>) {
        let width = match self.slots[s.id.index()].vcd_width() {
            Some(w) => w,
            None => return,
        };
        let name = self.slots[s.id.index()].name().to_string();
        let initial = self.slots[s.id.index()].vcd_bits();
        let var = self
            .tracer
            .get_or_insert_with(VcdTrace::new)
            .add_var(&name, width, &initial);
        if self.traced.len() <= s.id.index() {
            self.traced.resize(s.id.index() + 1, None);
        }
        self.traced[s.id.index()] = Some(var);
    }

    /// Returns the VCD trace accumulated so far, if tracing was enabled.
    pub fn vcd(&self) -> Option<String> {
        self.tracer.as_ref().map(VcdTrace::render)
    }

    /// Runs until simulation time reaches `until`, all activity is exhausted,
    /// or a stop is requested.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaLimit`] if the model fails to settle at a
    /// single timestamp.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), SimError> {
        self.stop_requested = false;
        if !self.initialized {
            self.initialized = true;
            for pid in 0..self.processes.len() {
                self.enqueue(ProcessId(pid as u32));
            }
        }
        loop {
            if self.stop_requested {
                return Ok(());
            }
            if !self.runnable.is_empty() {
                self.execute_delta()?;
                continue;
            }
            if !self.pending_writes.is_empty() {
                self.bump_delta()?;
                let update_t0 = self.profiler.is_some().then(Instant::now);
                self.update_and_notify();
                if let (Some(t0), Some(p)) = (update_t0, &mut self.profiler) {
                    p.update.record(t0.elapsed());
                }
                continue;
            }
            // Quiescent: advance time.
            let next_time = match self.queue.peek() {
                Some(ev) => ev.time,
                None => {
                    self.now = until;
                    return Ok(());
                }
            };
            if next_time > until {
                self.now = until;
                return Ok(());
            }
            self.advance_to(next_time);
        }
    }

    /// Runs for a relative duration from the current time.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::run_until`].
    pub fn run_for(&mut self, duration: SimTime) -> Result<(), SimError> {
        self.run_until(self.now.saturating_add(duration))
    }

    fn advance_to(&mut self, time: SimTime) {
        self.now = time;
        self.deltas_at_now = 0;
        // Edge flags from the previous timestamp must not leak forward.
        for id in self.recently_changed.drain(..) {
            self.slots[id.index()].clear_recent_change();
        }
        while let Some(ev) = self.queue.peek() {
            if ev.time != time {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            match ev.kind {
                EventKind::Wake(pid) => self.enqueue(pid),
                EventKind::ClockToggle {
                    signal,
                    half_period,
                } => {
                    self.toggle_bool(signal);
                    self.push_event(
                        time + half_period,
                        EventKind::ClockToggle {
                            signal,
                            half_period,
                        },
                    );
                }
            }
        }
    }

    fn toggle_bool(&mut self, id: SignalId) {
        let slot = self.slots[id.index()]
            .as_any_mut()
            .downcast_mut::<Slot<bool>>()
            .expect("clock toggle on a non-bool signal");
        let v = !slot.current;
        if slot.next.is_none() {
            self.pending_writes.push(id);
        }
        let slot = self.slots[id.index()]
            .as_any_mut()
            .downcast_mut::<Slot<bool>>()
            .expect("clock toggle on a non-bool signal");
        slot.next = Some(v);
    }

    fn enqueue(&mut self, pid: ProcessId) {
        let p = &mut self.processes[pid.index()];
        if !p.queued {
            p.queued = true;
            self.runnable.push(pid);
        }
    }

    fn bump_delta(&mut self) -> Result<(), SimError> {
        self.deltas_at_now += 1;
        self.stats.deltas += 1;
        if self.deltas_at_now > self.delta_limit {
            return Err(SimError::DeltaLimit {
                time: self.now,
                limit: self.delta_limit,
            });
        }
        Ok(())
    }

    fn execute_delta(&mut self) -> Result<(), SimError> {
        self.bump_delta()?;
        let profiling = self.profiler.is_some();
        let delta_t0 = profiling.then(Instant::now);
        let to_run = std::mem::take(&mut self.runnable);
        for pid in &to_run {
            self.processes[pid.index()].queued = false;
        }
        for pid in to_run {
            let mut body = self.processes[pid.index()]
                .body
                .take()
                .expect("process body re-entered");
            let body_t0 = profiling.then(Instant::now);
            let mut ctx = ProcCtx { kernel: self, pid };
            body(&mut ctx);
            if let (Some(t0), Some(p)) = (body_t0, &mut self.profiler) {
                p.process_mut(pid.index()).record(t0.elapsed());
            }
            self.stats.activations += 1;
            self.processes[pid.index()].body = Some(body);
        }
        let update_t0 = profiling.then(Instant::now);
        self.update_and_notify();
        if let (Some(t0), Some(p)) = (update_t0, &mut self.profiler) {
            p.update.record(t0.elapsed());
        }
        if let (Some(t0), Some(p)) = (delta_t0, &mut self.profiler) {
            p.delta.record(t0.elapsed());
        }
        Ok(())
    }

    fn update_and_notify(&mut self) {
        for id in self.recently_changed.drain(..) {
            self.slots[id.index()].clear_recent_change();
        }
        let writes = std::mem::take(&mut self.pending_writes);
        for id in writes {
            if self.slots[id.index()].apply_update(self.now) {
                self.stats.signal_changes += 1;
                self.recently_changed.push(id);
                if let Some(tr) = &mut self.tracer {
                    if let Some(Some(var)) = self.traced.get(id.index()) {
                        let bits = self.slots[id.index()].vcd_bits();
                        tr.record_var(self.now, *var, &bits);
                    }
                }
                let sensitive = std::mem::take(&mut self.sensitive[id.index()]);
                for pid in &sensitive {
                    self.enqueue(*pid);
                }
                self.sensitive[id.index()] = sensitive;
                for pid in std::mem::take(&mut self.waiters[id.index()]) {
                    self.enqueue(pid);
                }
            }
        }
    }
}

/// Execution context handed to a running process.
///
/// Gives the process read/write access to signals, the current time, and
/// scheduling facilities.
pub struct ProcCtx<'a> {
    kernel: &'a mut Kernel,
    pid: ProcessId,
}

impl ProcCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The id of the running process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Reads the committed value of a signal.
    pub fn read<T: SignalValue>(&self, s: Signal<T>) -> T {
        self.kernel.read(s)
    }

    /// Buffers a write; it commits at the next update phase.
    pub fn write<T: SignalValue>(&mut self, s: Signal<T>, value: T) {
        self.kernel.write(s, value);
    }

    /// True iff `s` changed in the update phase that triggered this delta.
    pub fn changed<T: SignalValue>(&self, s: Signal<T>) -> bool {
        self.kernel.changed(s)
    }

    /// True iff `s` rose to `true` in the triggering update phase.
    pub fn posedge(&self, s: Signal<bool>) -> bool {
        self.kernel.posedge(s)
    }

    /// True iff `s` fell to `false` in the triggering update phase.
    pub fn negedge(&self, s: Signal<bool>) -> bool {
        self.kernel.negedge(s)
    }

    /// Schedules this process to run again after `delay`.
    pub fn wake_after(&mut self, delay: SimTime) {
        let at = self.kernel.now.saturating_add(delay);
        self.kernel.wake_at(self.pid, at);
    }

    /// Schedules this process to run again at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn wake_at(&mut self, at: SimTime) {
        self.kernel.wake_at(self.pid, at);
    }

    /// Requests the simulation to stop after the current delta cycle.
    pub fn stop(&mut self) {
        self.kernel.request_stop();
    }

    /// Runs this process once when `s` next changes (one-shot dynamic
    /// sensitivity, SystemC's `next_trigger`-style).
    pub fn wake_on_change<T: SignalValue>(&mut self, s: Signal<T>) {
        let pid = self.pid;
        self.kernel.wake_on_change(pid, s.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_have_initial_values() {
        let mut k = Kernel::new();
        let a = k.signal("a", 41u32);
        assert_eq!(k.read(a), 41);
        assert_eq!(k.signal_name(a.id()), "a");
    }

    #[test]
    fn writes_commit_at_update_phase() {
        let mut k = Kernel::new();
        let a = k.signal("a", 0u32);
        let b = k.signal("b", 0u32);
        // b follows a + 1.
        k.process("follow", &[a.id()], move |ctx| {
            let v = ctx.read(a);
            ctx.write(b, v + 1);
        });
        k.write(a, 10);
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k.read(a), 10);
        assert_eq!(k.read(b), 11);
    }

    #[test]
    fn chained_processes_settle_over_deltas() {
        let mut k = Kernel::new();
        let a = k.signal("a", 0u32);
        let b = k.signal("b", 0u32);
        let c = k.signal("c", 0u32);
        k.process("ab", &[a.id()], move |ctx| {
            let v = ctx.read(a);
            ctx.write(b, v * 2);
        });
        k.process("bc", &[b.id()], move |ctx| {
            let v = ctx.read(b);
            ctx.write(c, v + 1);
        });
        k.write(a, 5);
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k.read(c), 11);
        // No timed events: the kernel still reaches the requested horizon.
        assert_eq!(k.now(), SimTime::from_ns(1));
    }

    #[test]
    fn clock_produces_expected_edges() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let edges = k.signal("edges", 0u32);
        k.process("count", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let e = ctx.read(edges);
                ctx.write(edges, e + 1);
            }
        });
        k.run_until(SimTime::from_ns(100)).unwrap();
        // Rising edges at 5, 15, ..., 95 ns -> 10 edges.
        assert_eq!(k.read(edges), 10);
    }

    #[test]
    fn negedge_and_changed() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let falls = k.signal("falls", 0u32);
        k.process("count", &[clk.id()], move |ctx| {
            assert!(ctx.changed(clk) || ctx.now() == SimTime::ZERO);
            if ctx.negedge(clk) {
                let f = ctx.read(falls);
                ctx.write(falls, f + 1);
            }
        });
        k.run_until(SimTime::from_ns(100)).unwrap();
        // Falling edges at 10, 20, ..., 100 ns (the event at exactly 100 ns
        // still fires) -> 10 edges.
        assert_eq!(k.read(falls), 10);
    }

    #[test]
    fn same_value_write_does_not_wake_sensitive_process() {
        let mut k = Kernel::new();
        let a = k.signal("a", 3u32);
        let runs = k.signal("runs", 0u32);
        k.process("watch", &[a.id()], move |ctx| {
            let r = ctx.read(runs);
            ctx.write(runs, r + 1);
        });
        k.run_until(SimTime::ZERO).unwrap();
        let after_init = k.read(runs);
        k.write(a, 3); // same value: no change, no wake
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k.read(runs), after_init);
        k.write(a, 4);
        k.run_until(SimTime::from_ns(2)).unwrap();
        assert_eq!(k.read(runs), after_init + 1);
    }

    #[test]
    fn delta_limit_detects_oscillation() {
        let mut k = Kernel::new();
        let a = k.signal("a", false);
        k.set_delta_limit(50);
        // Zero-delay inverter feeding itself: never settles.
        k.process("osc", &[a.id()], move |ctx| {
            let v = ctx.read(a);
            ctx.write(a, !v);
        });
        let err = k.run_until(SimTime::from_ns(1)).unwrap_err();
        assert_eq!(
            err,
            SimError::DeltaLimit {
                time: SimTime::ZERO,
                limit: 50
            }
        );
        assert!(err.to_string().contains("delta"));
    }

    #[test]
    fn wake_after_periodic_process() {
        let mut k = Kernel::new();
        let ticks = k.signal("ticks", 0u32);
        k.process("timer", &[], move |ctx| {
            let t = ctx.read(ticks);
            ctx.write(ticks, t + 1);
            ctx.wake_after(SimTime::from_ns(7));
        });
        k.run_until(SimTime::from_ns(50)).unwrap();
        // Runs at 0, 7, 14, 21, 28, 35, 42, 49 -> 8 activations.
        assert_eq!(k.read(ticks), 8);
    }

    #[test]
    fn stop_request_halts_run() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let n = k.signal("n", 0u32);
        k.process("stopper", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let v = ctx.read(n) + 1;
                ctx.write(n, v);
                if v == 3 {
                    ctx.stop();
                }
            }
        });
        k.run_until(SimTime::from_us(1)).unwrap();
        assert_eq!(k.read(n), 3);
        assert_eq!(k.now(), SimTime::from_ns(25));
        assert!(k.stop_requested());
        // A new run clears the stop and continues.
        k.run_until(SimTime::from_ns(45)).unwrap();
        assert_eq!(k.read(n), 5);
    }

    #[test]
    fn run_for_is_relative() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let _ = clk;
        k.run_for(SimTime::from_ns(30)).unwrap();
        assert_eq!(k.now(), SimTime::from_ns(30));
        k.run_for(SimTime::from_ns(30)).unwrap();
        assert_eq!(k.now(), SimTime::from_ns(60));
    }

    #[test]
    fn stats_accumulate() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        k.process("noop", &[clk.id()], |_| {});
        k.run_until(SimTime::from_ns(100)).unwrap();
        let s = k.stats();
        assert!(s.deltas >= 19);
        assert!(s.activations >= 19);
        assert!(s.signal_changes >= 19);
    }

    #[test]
    fn vcd_tracing_records_changes() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(2));
        let data = k.signal("data", 0u8);
        k.trace(clk);
        k.trace(data);
        k.process("drv", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let d = ctx.read(data);
                ctx.write(data, d.wrapping_add(1));
            }
        });
        k.run_until(SimTime::from_ns(10)).unwrap();
        let vcd = k.vcd().expect("tracing enabled");
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 8"));
        assert!(vcd.contains("#1000"));
        assert!(vcd.contains("b00000001"));
    }

    #[test]
    fn untraceable_signal_is_silently_skipped() {
        let mut k = Kernel::new();
        let s = k.signal("label", String::from("x"));
        k.trace(s);
        assert!(k.vcd().is_none());
    }

    #[test]
    fn edge_flags_do_not_leak_across_time() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let seen_stale = k.signal("stale", false);
        let probe = k.process("probe", &[], move |ctx| {
            if ctx.now() > SimTime::ZERO && ctx.posedge(clk) {
                // Woken by a timer between edges: posedge must be false.
                ctx.write(seen_stale, true);
            }
        });
        // Wake the probe at 7 ns: clock rose at 5 ns, flag must be cleared.
        k.wake_at(probe, SimTime::from_ns(7));
        k.run_until(SimTime::from_ns(20)).unwrap();
        assert!(!k.read(seen_stale));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_clock_panics() {
        let mut k = Kernel::new();
        let _ = k.clock("clk", SimTime::ZERO);
    }

    #[test]
    fn dynamic_sensitivity_is_one_shot() {
        let mut k = Kernel::new();
        let a = k.signal("a", 0u32);
        let fired = k.signal("fired", 0u32);
        k.process("waiter", &[], move |ctx| {
            if ctx.now() == SimTime::ZERO {
                // Arm once during initialization.
                ctx.wake_on_change(a);
            } else {
                let f = ctx.read(fired);
                ctx.write(fired, f + 1);
                // Not re-armed: subsequent changes must not wake us.
            }
        });
        let clk = k.clock("clk", SimTime::from_ns(10));
        k.process("driver", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let v = ctx.read(a);
                ctx.write(a, v + 1);
            }
        });
        k.run_until(SimTime::from_ns(100)).unwrap();
        assert_eq!(k.read(fired), 1, "one-shot waiter fired exactly once");
    }

    #[test]
    fn dynamic_sensitivity_rearmed_follows_every_change() {
        let mut k = Kernel::new();
        let a = k.signal("a", 0u32);
        let copies = k.signal("copies", 0u32);
        k.process("follower", &[], move |ctx| {
            if ctx.now() > SimTime::ZERO {
                let c = ctx.read(copies);
                ctx.write(copies, c + 1);
            }
            ctx.wake_on_change(a); // re-arm every activation
        });
        let clk = k.clock("clk", SimTime::from_ns(10));
        k.process("driver", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let v = ctx.read(a);
                ctx.write(a, v + 1);
            }
        });
        k.run_until(SimTime::from_ns(100)).unwrap();
        assert_eq!(k.read(copies), 10, "followed all ten changes");
    }

    #[test]
    fn profiling_times_deltas_and_processes() {
        let mut k = Kernel::new();
        let clk = k.clock("clk", SimTime::from_ns(10));
        let n = k.signal("n", 0u32);
        k.process("spin", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                let v = ctx.read(n);
                ctx.write(n, v + 1);
            }
        });
        assert!(k.profile().is_none(), "profiling is opt-in");
        k.enable_profiling();
        k.enable_profiling(); // idempotent: must not reset accumulators
        k.run_until(SimTime::from_ns(100)).unwrap();
        let p = k.profile().expect("profiling enabled");
        // Evaluate deltas are timed by the delta span; update-only deltas
        // (clock toggles with no runnable process) appear as update spans.
        assert!(p.delta.count > 0 && p.delta.count <= k.stats().deltas);
        assert_eq!(p.update.count, k.stats().deltas);
        let activations: u64 = p.per_process.iter().map(|s| s.count).sum();
        assert_eq!(activations, k.stats().activations);
        assert!(
            p.delta.total >= p.process_time(),
            "delta span covers bodies"
        );
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn wake_in_the_past_panics() {
        let mut k = Kernel::new();
        let p = k.process("p", &[], |_| {});
        k.run_until(SimTime::from_ns(10)).unwrap();
        k.wake_at(p, SimTime::from_ns(5));
    }
}
