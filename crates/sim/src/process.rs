//! Processes: the kernel's unit of executable behaviour.

use std::fmt;

use crate::kernel::ProcCtx;
use crate::signal::SignalId;

/// Identifier of a process registered with a [`crate::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// The closure type executed when a process runs.
pub type ProcessBody = Box<dyn FnMut(&mut ProcCtx<'_>)>;

pub(crate) struct Process {
    pub(crate) name: String,
    /// Taken out while the process runs so the kernel can be borrowed mutably.
    pub(crate) body: Option<ProcessBody>,
    pub(crate) sensitivity: Vec<SignalId>,
    /// Guards against double-queuing within one delta.
    pub(crate) queued: bool,
}

impl Process {
    pub(crate) fn new(name: String, sensitivity: Vec<SignalId>, body: ProcessBody) -> Self {
        Process {
            name,
            body: Some(body),
            sensitivity,
            queued: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(7).to_string(), "proc#7");
        assert_eq!(ProcessId(7).index(), 7);
    }

    #[test]
    fn process_holds_body_and_sensitivity() {
        let p = Process::new("p".into(), vec![SignalId(1)], Box::new(|_| {}));
        assert_eq!(p.name, "p");
        assert_eq!(p.sensitivity, vec![SignalId(1)]);
        assert!(p.body.is_some());
        assert!(!p.queued);
    }
}
